#include "src/freq/olh.h"

#include <cmath>

#include "src/common/math_util.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/hashing/mersenne61.h"

namespace ldphh {

OlhFO::OlhFO(uint64_t domain_size, double epsilon, uint64_t seed)
    : domain_size_(domain_size), epsilon_(epsilon), seed_(seed) {
  LDPHH_CHECK(domain_size >= 2, "OlhFO: domain must have >= 2 values");
  LDPHH_CHECK(epsilon > 0.0, "OlhFO: epsilon must be positive");
  g_ = static_cast<uint64_t>(std::llround(std::exp(epsilon))) + 1;
  if (g_ < 2) g_ = 2;
  report_bits_ = CeilLog2(NextPow2(g_));
  if (report_bits_ == 0) report_bits_ = 1;
  const double e = std::exp(epsilon);
  keep_prob_ = e / (e + static_cast<double>(g_) - 1.0);
}

uint64_t OlhFO::PersonalHash(uint64_t user_index, uint64_t value) const {
  // A fresh pairwise hash per user, derived from (seed, user_index):
  // h(v) = (a * v + b mod p) mod g with a != 0.
  uint64_t s = seed_ ^ Mix64(user_index + 0x1234567);
  const uint64_t a = 1 + Mix64(s) % (kMersenne61 - 1);
  const uint64_t b = Mix64(s ^ 0x9e3779b97f4a7c15ULL) % kMersenne61;
  const uint64_t hv =
      Mersenne61Add(Mersenne61Mul(a, Mersenne61FromU64(value)), b);
  return hv % g_;
}

FoReport OlhFO::EncodeForUser(uint64_t user_index, uint64_t value,
                              Rng& rng) const {
  LDPHH_DCHECK(value < domain_size_, "OlhFO: value out of domain");
  uint64_t hashed = PersonalHash(user_index, value);
  if (!rng.Bernoulli(keep_prob_)) {
    uint64_t other = rng.UniformU64(g_ - 1);
    if (other >= hashed) ++other;
    hashed = other;
  }
  return FoReport{hashed, report_bits_};
}

FoReport OlhFO::Encode(uint64_t value, Rng& rng) const {
  return EncodeForUser(next_user_++, value, rng);
}

void OlhFO::Aggregate(const FoReport& report) {
  AggregateIndexed(next_agg_index_, report);
}

void OlhFO::AggregateIndexed(uint64_t user_index, const FoReport& report) {
  reports_.emplace_back(user_index, static_cast<uint32_t>(report.bits));
  if (user_index >= next_agg_index_) next_agg_index_ = user_index + 1;
}

double OlhFO::Estimate(uint64_t value) const {
  LDPHH_DCHECK(value < domain_size_, "Estimate: value out of domain");
  // Support count: users whose report equals their personal hash of value.
  double support = 0.0;
  for (const auto& [user_index, bits] : reports_) {
    if (bits == PersonalHash(user_index, value)) support += 1.0;
  }
  const double n = static_cast<double>(reports_.size());
  const double inv_g = 1.0 / static_cast<double>(g_);
  return (support - n * inv_g) / (keep_prob_ - inv_g);
}

size_t OlhFO::MemoryBytes() const {
  return reports_.size() * sizeof(reports_[0]);
}

Status OlhFO::Merge(const SmallDomainFO& other) {
  LDPHH_RETURN_IF_ERROR(CheckMergeCompatible(*this, other));
  const auto& o = static_cast<const OlhFO&>(other);
  if (seed_ != o.seed_) {
    return Status::InvalidArgument("olh: Merge with different hash seed");
  }
  reports_.insert(reports_.end(), o.reports_.begin(), o.reports_.end());
  if (o.next_agg_index_ > next_agg_index_) next_agg_index_ = o.next_agg_index_;
  return Status::OK();
}

Status OlhFO::SerializeState(std::string* out) const {
  WriteFoStateHeader(*this, out);
  PutU64(out, seed_);
  PutU64(out, next_agg_index_);
  PutU64(out, reports_.size());
  for (const auto& [user_index, bits] : reports_) {
    PutVarint64(out, user_index);
    PutU32(out, bits);
  }
  return Status::OK();
}

Status OlhFO::RestoreState(std::string_view in) {
  ByteReader reader(in);
  LDPHH_RETURN_IF_ERROR(CheckFoStateHeader(*this, reader));
  uint64_t seed = 0, next_index = 0, count = 0;
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&seed));
  if (seed != seed_) {
    return Status::InvalidArgument("olh state: hash seed mismatch");
  }
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&next_index));
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&count));
  // Each record is >= 5 bytes, so a count beyond that bound is corruption
  // (and guarding it keeps a bad header from driving a huge reserve).
  if (count > reader.remaining() / 5 + 1) {
    return Status::DecodeFailure("olh state: report count exceeds payload");
  }
  std::vector<std::pair<uint64_t, uint32_t>> reports;
  reports.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t user_index = 0;
    uint32_t bits = 0;
    LDPHH_RETURN_IF_ERROR(reader.ReadVarint64(&user_index));
    LDPHH_RETURN_IF_ERROR(reader.ReadU32(&bits));
    reports.emplace_back(user_index, bits);
  }
  next_agg_index_ = next_index;
  reports_ = std::move(reports);
  return Status::OK();
}

}  // namespace ldphh
