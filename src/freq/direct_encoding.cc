#include "src/freq/direct_encoding.h"

#include <cmath>

#include "src/common/math_util.h"
#include "src/common/serde.h"
#include "src/common/status.h"

namespace ldphh {

DirectEncodingFO::DirectEncodingFO(uint64_t domain_size, double epsilon)
    : domain_size_(domain_size),
      value_bits_(CeilLog2(NextPow2(domain_size))),
      epsilon_(epsilon) {
  LDPHH_CHECK(domain_size >= 2, "DirectEncodingFO: domain must have >= 2 values");
  LDPHH_CHECK(epsilon > 0.0, "DirectEncodingFO: epsilon must be positive");
  const double e = std::exp(epsilon);
  const double denom = e + static_cast<double>(domain_size) - 1.0;
  keep_prob_ = e / denom;
  other_prob_ = 1.0 / denom;
  hist_.assign(static_cast<size_t>(domain_size), 0.0);
  if (value_bits_ == 0) value_bits_ = 1;
}

FoReport DirectEncodingFO::Encode(uint64_t value, Rng& rng) const {
  LDPHH_DCHECK(value < domain_size_, "DirectEncodingFO: value out of domain");
  uint64_t out = value;
  if (!rng.Bernoulli(keep_prob_)) {
    // Uniform over the other K-1 values.
    out = rng.UniformU64(domain_size_ - 1);
    if (out >= value) ++out;
  }
  return FoReport{out, value_bits_};
}

void DirectEncodingFO::Aggregate(const FoReport& report) {
  LDPHH_DCHECK(report.bits < domain_size_, "DirectEncodingFO: bad report");
  hist_[static_cast<size_t>(report.bits)] += 1.0;
  ++count_;
}

double DirectEncodingFO::Estimate(uint64_t value) const {
  LDPHH_DCHECK(value < domain_size_, "Estimate: value out of domain");
  // E[hist(v)] = f(v) p + (n - f(v)) q  with q the per-other-value mass.
  return (hist_[static_cast<size_t>(value)] -
          static_cast<double>(count_) * other_prob_) /
         (keep_prob_ - other_prob_);
}

size_t DirectEncodingFO::MemoryBytes() const {
  return hist_.size() * sizeof(double);
}

Status DirectEncodingFO::Merge(const SmallDomainFO& other) {
  LDPHH_RETURN_IF_ERROR(CheckMergeCompatible(*this, other));
  const auto& o = static_cast<const DirectEncodingFO&>(other);
  count_ += o.count_;
  for (size_t i = 0; i < hist_.size(); ++i) hist_[i] += o.hist_[i];
  return Status::OK();
}

Status DirectEncodingFO::SerializeState(std::string* out) const {
  WriteFoStateHeader(*this, out);
  PutU64(out, count_);
  PutU64(out, hist_.size());
  for (double v : hist_) PutDouble(out, v);
  return Status::OK();
}

Status DirectEncodingFO::RestoreState(std::string_view in) {
  ByteReader reader(in);
  LDPHH_RETURN_IF_ERROR(CheckFoStateHeader(*this, reader));
  uint64_t count = 0, size = 0;
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&count));
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&size));
  if (size != hist_.size()) {
    return Status::DecodeFailure("k-rr state: histogram size mismatch");
  }
  std::vector<double> hist(static_cast<size_t>(size));
  for (double& v : hist) LDPHH_RETURN_IF_ERROR(reader.ReadDouble(&v));
  count_ = count;
  hist_ = std::move(hist);
  return Status::OK();
}

}  // namespace ldphh
