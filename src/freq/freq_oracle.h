/// \file freq_oracle.h
/// \brief Frequency-oracle interface (Definition 3.2) for small domains.
///
/// A frequency oracle is an LDP protocol whose server ends up with a data
/// structure answering frequency queries over the domain. The small-domain
/// interface below covers the oracles used inside the heavy-hitter
/// reductions and the industrial baselines; the large-domain Hashtogram
/// (Theorem 3.7) has its own class in hashtogram.h because its client needs
/// the user index (row assignment) in addition to the value.

#ifndef LDPHH_FREQ_FREQ_ORACLE_H_
#define LDPHH_FREQ_FREQ_ORACLE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/random.h"
#include "src/common/status.h"

namespace ldphh {

/// A single user report: up to 64 payload bits. `num_bits` is the honest
/// communication cost in bits of this report on the wire.
struct FoReport {
  uint64_t bits = 0;
  int num_bits = 0;
};

/// A report as it travels to the ingestion service: the oracle report plus
/// the public user index (needed for row/hash/group assignment by some
/// protocols). The wire framing lives in src/server/report_codec.h; the
/// struct lives here so the protocol-layer `Aggregator` interface
/// (src/protocols/aggregator.h) can consume it without a server dependency.
struct WireReport {
  uint64_t user_index = 0;
  FoReport report;
};

/// \brief LDP frequency oracle over a small integer domain [0, K).
///
/// Usage: users call Encode (client side, stateless w.r.t. the server);
/// the server calls Aggregate per report, Finalize once, then Estimate.
class SmallDomainFO {
 public:
  virtual ~SmallDomainFO() = default;

  /// Domain size K.
  virtual uint64_t domain_size() const = 0;
  /// The per-user privacy parameter epsilon.
  virtual double epsilon() const = 0;
  /// Short diagnostic name ("hadamard-response", "k-rr", ...).
  virtual std::string Name() const = 0;

  /// Client: privatizes \p value (< K) into a report.
  virtual FoReport Encode(uint64_t value, Rng& rng) const = 0;

  /// Server: absorbs one report.
  virtual void Aggregate(const FoReport& report) = 0;
  /// Server: absorbs one report attributed to an explicit user index.
  /// Oracles whose estimator depends on user identity (OLH's personal
  /// hashes) override this; for the rest the index is irrelevant. The
  /// sharded ingestion path always calls this form so reports may arrive in
  /// any order and on any shard.
  virtual void AggregateIndexed(uint64_t user_index, const FoReport& report) {
    (void)user_index;
    Aggregate(report);
  }
  /// Server: closes aggregation; must be called before Estimate.
  virtual void Finalize() = 0;
  /// Server: unbiased frequency estimate for \p value.
  virtual double Estimate(uint64_t value) const = 0;

  /// Server-side memory footprint in bytes (for the Table-1 rows).
  virtual size_t MemoryBytes() const = 0;

  // ----------------------------------------------------- mergeable state --
  // Sharded aggregation splits one logical oracle across N workers; the
  // contract is exact: merging the shard states and finalizing must produce
  // bit-for-bit the estimates of a single oracle that aggregated every
  // report itself. (All built-in oracles accumulate integer-valued tallies
  // in doubles, so addition order cannot perturb the result.) The epoch
  // layer (src/server/epoch_manager.h) leans on the same contract across
  // *time*: it restores the persisted snapshots of consecutive epochs and
  // merges them, so Merge must also be associative over restored states —
  // which integer tallies (and report-list concatenation) are.

  /// True iff Merge / SerializeState / RestoreState are implemented.
  virtual bool Mergeable() const { return false; }

  /// Folds \p other's aggregation state into this oracle. Both must be
  /// un-finalized and identically configured (same concrete type, domain,
  /// epsilon). \p other is left in an unspecified aggregation state.
  virtual Status Merge(const SmallDomainFO& other) {
    (void)other;
    return Status::FailedPrecondition(Name() + ": Merge not implemented");
  }

  /// Appends a versioned binary snapshot of the aggregation state to \p out
  /// (see WriteFoStateHeader in the .h's of the implementing oracles).
  virtual Status SerializeState(std::string* out) const {
    (void)out;
    return Status::FailedPrecondition(Name() + ": SerializeState not implemented");
  }

  /// Replaces the aggregation state with a SerializeState snapshot taken
  /// from an identically configured oracle.
  virtual Status RestoreState(std::string_view in) {
    (void)in;
    return Status::FailedPrecondition(Name() + ": RestoreState not implemented");
  }
};

/// Shared envelope for oracle state snapshots:
///   [u32 magic "FOST"][u16 version][name (length-prefixed)]
///   [u64 domain_size][u64 epsilon bits][oracle payload...]
/// The header pins the snapshot to a concrete oracle configuration so a
/// restore into a mismatched instance fails cleanly.
inline constexpr uint32_t kFoStateMagic = 0x54534f46u;  // "FOST" LE.
inline constexpr uint16_t kFoStateVersion = 1;

void WriteFoStateHeader(const SmallDomainFO& fo, std::string* out);

/// Validates the envelope against \p fo; on success the reader is positioned
/// at the oracle payload.
class ByteReader;
Status CheckFoStateHeader(const SmallDomainFO& fo, ByteReader& reader);

/// Configuration-compatibility check shared by the Merge implementations.
Status CheckMergeCompatible(const SmallDomainFO& self, const SmallDomainFO& other);

}  // namespace ldphh

#endif  // LDPHH_FREQ_FREQ_ORACLE_H_
