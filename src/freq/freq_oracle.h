/// \file freq_oracle.h
/// \brief Frequency-oracle interface (Definition 3.2) for small domains.
///
/// A frequency oracle is an LDP protocol whose server ends up with a data
/// structure answering frequency queries over the domain. The small-domain
/// interface below covers the oracles used inside the heavy-hitter
/// reductions and the industrial baselines; the large-domain Hashtogram
/// (Theorem 3.7) has its own class in hashtogram.h because its client needs
/// the user index (row assignment) in addition to the value.

#ifndef LDPHH_FREQ_FREQ_ORACLE_H_
#define LDPHH_FREQ_FREQ_ORACLE_H_

#include <cstdint>
#include <string>

#include "src/common/random.h"

namespace ldphh {

/// A single user report: up to 64 payload bits. `num_bits` is the honest
/// communication cost in bits of this report on the wire.
struct FoReport {
  uint64_t bits = 0;
  int num_bits = 0;
};

/// \brief LDP frequency oracle over a small integer domain [0, K).
///
/// Usage: users call Encode (client side, stateless w.r.t. the server);
/// the server calls Aggregate per report, Finalize once, then Estimate.
class SmallDomainFO {
 public:
  virtual ~SmallDomainFO() = default;

  /// Domain size K.
  virtual uint64_t domain_size() const = 0;
  /// The per-user privacy parameter epsilon.
  virtual double epsilon() const = 0;
  /// Short diagnostic name ("hadamard-response", "k-rr", ...).
  virtual std::string Name() const = 0;

  /// Client: privatizes \p value (< K) into a report.
  virtual FoReport Encode(uint64_t value, Rng& rng) const = 0;

  /// Server: absorbs one report.
  virtual void Aggregate(const FoReport& report) = 0;
  /// Server: closes aggregation; must be called before Estimate.
  virtual void Finalize() = 0;
  /// Server: unbiased frequency estimate for \p value.
  virtual double Estimate(uint64_t value) const = 0;

  /// Server-side memory footprint in bytes (for the Table-1 rows).
  virtual size_t MemoryBytes() const = 0;
};

}  // namespace ldphh

#endif  // LDPHH_FREQ_FREQ_ORACLE_H_
