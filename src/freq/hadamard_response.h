/// \file hadamard_response.h
/// \brief Small-domain Hashtogram (Theorem 3.8): one-bit Hadamard reports.
///
/// Every user holding v < K samples a uniform index l in [T] (T = K rounded
/// to a power of two), computes the +/-1 Hadamard entry H[l, v], flips it
/// with probability 1/(e^eps + 1) (binary randomized response), and sends
/// (l, bit) — log2(T) + 1 bits. The server histograms the reports by index
/// and recovers unbiased frequency estimates for the whole domain with one
/// FWHT. Per-query error is O(sqrt(n log(1/beta)) / eps), matching
/// Theorem 3.8; server memory is O(T).

#ifndef LDPHH_FREQ_HADAMARD_RESPONSE_H_
#define LDPHH_FREQ_HADAMARD_RESPONSE_H_

#include <vector>

#include "src/freq/freq_oracle.h"

namespace ldphh {

/// \brief Theorem 3.8 frequency oracle.
class HadamardResponseFO final : public SmallDomainFO {
 public:
  /// \param domain_size  K >= 1.
  /// \param epsilon      per-user privacy parameter (> 0).
  HadamardResponseFO(uint64_t domain_size, double epsilon);

  uint64_t domain_size() const override { return domain_size_; }
  double epsilon() const override { return epsilon_; }
  std::string Name() const override { return "hadamard-response"; }

  FoReport Encode(uint64_t value, Rng& rng) const override;
  void Aggregate(const FoReport& report) override;
  void Finalize() override;
  double Estimate(uint64_t value) const override;
  size_t MemoryBytes() const override;

  bool Mergeable() const override { return true; }
  Status Merge(const SmallDomainFO& other) override;
  Status SerializeState(std::string* out) const override;
  Status RestoreState(std::string_view in) override;

  /// Hadamard index range T (power of two >= K).
  uint64_t table_size() const { return table_size_; }

 private:
  uint64_t domain_size_;
  uint64_t table_size_;
  int index_bits_;
  double epsilon_;
  double keep_prob_;   ///< e^eps / (e^eps + 1).
  double debias_;      ///< (e^eps + 1) / (e^eps - 1).
  bool finalized_ = false;
  std::vector<double> acc_;  ///< Index histogram, then FWHT'd estimates.
};

}  // namespace ldphh

#endif  // LDPHH_FREQ_HADAMARD_RESPONSE_H_
