/// \file count_mean_sketch.h
/// \brief Count-Mean-Sketch (Apple's iOS/macOS deployment, per "Learning
/// with Privacy at Scale", 2017) — the second industrial frequency oracle
/// the paper's introduction cites (reference [33]).
///
/// Each user picks a uniform sketch row r, one-hot encodes h_r(x) into a
/// width-W bit vector, flips every bit independently with probability
/// 1/(e^{eps/2}+1), and reports the W bits plus the row index. The server
/// debiases the bit counts per row and averages rows at query time with the
/// collision correction W/(W-1) (f^ is unbiased under pairwise hashing).
///
/// Included as an ablation point: same O~(sqrt n)-memory sketch family as
/// Hashtogram, but W-bit reports instead of log T + 1 — the communication /
/// variance trade Apple chose (their HCMS variant is essentially the
/// Hashtogram encoding, implemented in hashtogram.h).

#ifndef LDPHH_FREQ_COUNT_MEAN_SKETCH_H_
#define LDPHH_FREQ_COUNT_MEAN_SKETCH_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bit_util.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/hashing/kwise_hash.h"

namespace ldphh {

/// Tuning for CountMeanSketch.
struct CmsParams {
  int rows = 0;         ///< 0 = auto: 16.
  uint64_t width = 0;   ///< W; 0 = auto next_pow2(2 sqrt(n)); <= 56 enforced
                        ///< by splitting into multiple report words.
};

/// One user report: the row index and the perturbed one-hot bits.
struct CmsReport {
  uint32_t row = 0;
  std::vector<uint64_t> bits;  ///< ceil(W/64) packed words.
  int num_bits = 0;            ///< Honest wire size: W + log2(rows).
};

/// \brief Apple-style count-mean-sketch frequency oracle over DomainItem.
class CountMeanSketch {
 public:
  CountMeanSketch(uint64_t n_hint, double epsilon, const CmsParams& params,
                  uint64_t seed);

  /// Client: privatizes item \p x.
  CmsReport Encode(const DomainItem& x, Rng& rng) const;

  /// Server: absorbs a report.
  void Aggregate(const CmsReport& report);
  /// Server: closes aggregation (debiasing).
  void Finalize();
  /// Unbiased frequency estimate for \p x.
  double Estimate(const DomainItem& x) const;

  int rows() const { return rows_; }
  uint64_t width() const { return width_; }
  size_t MemoryBytes() const;
  int ReportBits() const;

  /// Folds \p other's (same-configuration, un-finalized) tallies into this
  /// sketch; equivalent to having aggregated both report streams here.
  Status Merge(const CountMeanSketch& other);
  /// Binary snapshot of the aggregation state (tallies only — the hash
  /// family is reconstructed from the constructor seed).
  Status SerializeState(std::string* out) const;
  /// Restores a SerializeState snapshot into this (same-configuration,
  /// un-finalized) sketch.
  Status RestoreState(std::string_view in);

 private:
  int rows_;
  uint64_t width_;
  double epsilon_;
  uint64_t seed_;      ///< Hash-family seed; pins Merge/Restore compatibility.
  double flip_prob_;   ///< Per-bit flip probability 1/(e^{eps/2}+1).
  bool finalized_ = false;
  uint64_t count_ = 0;
  std::vector<uint64_t> row_count_;
  std::vector<std::vector<double>> acc_;  ///< rows x width bit tallies.
  std::unique_ptr<HashFamily> hashes_;    ///< h_r : X -> [W], pairwise.
};

}  // namespace ldphh

#endif  // LDPHH_FREQ_COUNT_MEAN_SKETCH_H_
