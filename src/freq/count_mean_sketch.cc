#include "src/freq/count_mean_sketch.h"

#include <cmath>

#include "src/common/math_util.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/freq/freq_oracle.h"

namespace ldphh {

CountMeanSketch::CountMeanSketch(uint64_t n_hint, double epsilon,
                                 const CmsParams& params, uint64_t seed)
    : epsilon_(epsilon), seed_(seed) {
  LDPHH_CHECK(epsilon > 0.0, "CountMeanSketch: epsilon must be positive");
  rows_ = params.rows > 0 ? params.rows : 16;
  width_ = params.width;
  if (width_ == 0) {
    const double root =
        std::sqrt(static_cast<double>(std::max<uint64_t>(n_hint, 16)));
    width_ = NextPow2(static_cast<uint64_t>(2.0 * root));
  }
  LDPHH_CHECK(width_ >= 2, "CountMeanSketch: width must be >= 2");
  const double e2 = std::exp(epsilon / 2.0);
  flip_prob_ = 1.0 / (e2 + 1.0);
  row_count_.assign(static_cast<size_t>(rows_), 0);
  acc_.assign(static_cast<size_t>(rows_),
              std::vector<double>(static_cast<size_t>(width_), 0.0));
  hashes_ = std::make_unique<HashFamily>(rows_, /*k=*/2, width_, seed);
}

CmsReport CountMeanSketch::Encode(const DomainItem& x, Rng& rng) const {
  CmsReport report;
  report.row = static_cast<uint32_t>(rng.UniformU64(static_cast<uint64_t>(rows_)));
  const uint64_t hot = hashes_->at(static_cast<int>(report.row))(x);
  const size_t words = static_cast<size_t>((width_ + 63) / 64);
  report.bits.assign(words, 0);
  for (uint64_t w = 0; w < width_; ++w) {
    bool bit = (w == hot);
    if (rng.Bernoulli(flip_prob_)) bit = !bit;
    if (bit) report.bits[static_cast<size_t>(w >> 6)] |= uint64_t{1} << (w & 63);
  }
  report.num_bits =
      static_cast<int>(width_) + CeilLog2(NextPow2(static_cast<uint64_t>(rows_)));
  return report;
}

void CountMeanSketch::Aggregate(const CmsReport& report) {
  LDPHH_DCHECK(!finalized_, "Aggregate after Finalize");
  LDPHH_CHECK(report.row < static_cast<uint32_t>(rows_),
              "CountMeanSketch: bad row");
  auto& row = acc_[report.row];
  for (uint64_t w = 0; w < width_; ++w) {
    if ((report.bits[static_cast<size_t>(w >> 6)] >> (w & 63)) & 1) {
      row[static_cast<size_t>(w)] += 1.0;
    }
  }
  ++row_count_[report.row];
  ++count_;
}

void CountMeanSketch::Finalize() {
  LDPHH_DCHECK(!finalized_, "double Finalize");
  // Debias each cell: E[ones] = hits (1-p) + (n_r - hits) p.
  for (int r = 0; r < rows_; ++r) {
    const double n_r = static_cast<double>(row_count_[static_cast<size_t>(r)]);
    for (auto& cell : acc_[static_cast<size_t>(r)]) {
      cell = (cell - n_r * flip_prob_) / (1.0 - 2.0 * flip_prob_);
    }
  }
  finalized_ = true;
}

double CountMeanSketch::Estimate(const DomainItem& x) const {
  LDPHH_DCHECK(finalized_, "Estimate before Finalize");
  // Per row: debiased hits at h_r(x) contain f_r(x) plus ~n_r/W collision
  // mass; the W/(W-1) correction removes its expectation. Scale each row
  // by rows_ (a 1/rows_ sample of the population) and average.
  const double w_corr =
      static_cast<double>(width_) / (static_cast<double>(width_) - 1.0);
  double acc = 0.0;
  for (int r = 0; r < rows_; ++r) {
    const double n_r = static_cast<double>(row_count_[static_cast<size_t>(r)]);
    const uint64_t cell = hashes_->at(r)(x);
    const double debiased =
        acc_[static_cast<size_t>(r)][static_cast<size_t>(cell)];
    acc += w_corr * (debiased - n_r / static_cast<double>(width_));
  }
  return acc;
}

size_t CountMeanSketch::MemoryBytes() const {
  return static_cast<size_t>(rows_) * static_cast<size_t>(width_) *
         sizeof(double);
}

Status CountMeanSketch::Merge(const CountMeanSketch& other) {
  if (rows_ != other.rows_ || width_ != other.width_ ||
      epsilon_ != other.epsilon_ || seed_ != other.seed_) {
    return Status::InvalidArgument("count-mean-sketch: Merge configuration mismatch");
  }
  if (finalized_ || other.finalized_) {
    return Status::FailedPrecondition("count-mean-sketch: Merge after Finalize");
  }
  count_ += other.count_;
  for (int r = 0; r < rows_; ++r) {
    row_count_[static_cast<size_t>(r)] += other.row_count_[static_cast<size_t>(r)];
    auto& row = acc_[static_cast<size_t>(r)];
    const auto& orow = other.acc_[static_cast<size_t>(r)];
    for (size_t w = 0; w < row.size(); ++w) row[w] += orow[w];
  }
  return Status::OK();
}

Status CountMeanSketch::SerializeState(std::string* out) const {
  if (finalized_) {
    return Status::FailedPrecondition(
        "count-mean-sketch: SerializeState after Finalize");
  }
  PutU32(out, kFoStateMagic);
  PutU16(out, kFoStateVersion);
  PutLengthPrefixed(out, "count-mean-sketch");
  PutU32(out, static_cast<uint32_t>(rows_));
  PutU64(out, width_);
  PutU64(out, seed_);
  PutU64(out, count_);
  for (uint64_t rc : row_count_) PutU64(out, rc);
  for (const auto& row : acc_) {
    for (double v : row) PutDouble(out, v);
  }
  return Status::OK();
}

Status CountMeanSketch::RestoreState(std::string_view in) {
  if (finalized_) {
    return Status::FailedPrecondition(
        "count-mean-sketch: RestoreState after Finalize");
  }
  ByteReader reader(in);
  uint32_t magic = 0;
  uint16_t version = 0;
  std::string_view name;
  LDPHH_RETURN_IF_ERROR(reader.ReadU32(&magic));
  LDPHH_RETURN_IF_ERROR(reader.ReadU16(&version));
  LDPHH_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&name));
  if (magic != kFoStateMagic || version != kFoStateVersion ||
      name != "count-mean-sketch") {
    return Status::DecodeFailure("count-mean-sketch state: bad header");
  }
  uint32_t rows = 0;
  uint64_t width = 0, seed = 0, count = 0;
  LDPHH_RETURN_IF_ERROR(reader.ReadU32(&rows));
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&width));
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&seed));
  if (rows != static_cast<uint32_t>(rows_) || width != width_ ||
      seed != seed_) {
    return Status::InvalidArgument(
        "count-mean-sketch state: configuration mismatch");
  }
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&count));
  std::vector<uint64_t> row_count(static_cast<size_t>(rows_));
  for (uint64_t& rc : row_count) LDPHH_RETURN_IF_ERROR(reader.ReadU64(&rc));
  std::vector<std::vector<double>> acc(
      static_cast<size_t>(rows_),
      std::vector<double>(static_cast<size_t>(width_)));
  for (auto& row : acc) {
    for (double& v : row) LDPHH_RETURN_IF_ERROR(reader.ReadDouble(&v));
  }
  count_ = count;
  row_count_ = std::move(row_count);
  acc_ = std::move(acc);
  return Status::OK();
}

int CountMeanSketch::ReportBits() const {
  return static_cast<int>(width_) +
         CeilLog2(NextPow2(static_cast<uint64_t>(rows_)));
}

}  // namespace ldphh
