/// \file fwht.h
/// \brief In-place fast Walsh-Hadamard transform.
///
/// Both Hashtogram variants decode their one-bit user reports by a single
/// FWHT over the report-index histogram: the transform evaluates
/// sum_l u[l] * (-1)^{<l, v>} for every v simultaneously in O(T log T).

#ifndef LDPHH_FREQ_FWHT_H_
#define LDPHH_FREQ_FWHT_H_

#include <vector>

#include "src/common/status.h"

namespace ldphh {

/// In-place Walsh-Hadamard transform of \p v; size must be a power of two.
/// Unnormalized: applying twice multiplies by the length.
inline void Fwht(std::vector<double>& v) {
  const size_t n = v.size();
  LDPHH_CHECK(n > 0 && (n & (n - 1)) == 0, "Fwht: length must be a power of two");
  for (size_t len = 1; len < n; len <<= 1) {
    for (size_t i = 0; i < n; i += len << 1) {
      for (size_t j = i; j < i + len; ++j) {
        const double a = v[j];
        const double b = v[j + len];
        v[j] = a + b;
        v[j + len] = a - b;
      }
    }
  }
}

}  // namespace ldphh

#endif  // LDPHH_FREQ_FWHT_H_
