/// \file unary_encoding.h
/// \brief Symmetric unary encoding ("basic RAPPOR", Erlingsson et al. 2014).
///
/// The user one-hot encodes the value into K bits and flips every bit
/// independently with probability 1/(e^{eps/2} + 1); the report is the full
/// K-bit vector. This is the mechanism behind Google Chrome's RAPPOR — the
/// paper's motivating industrial deployment — so it ships as a baseline.
/// Report packing limits K to 56 here (plenty for the ablation bench).

#ifndef LDPHH_FREQ_UNARY_ENCODING_H_
#define LDPHH_FREQ_UNARY_ENCODING_H_

#include <vector>

#include "src/freq/freq_oracle.h"

namespace ldphh {

/// \brief Basic-RAPPOR frequency oracle.
class UnaryEncodingFO final : public SmallDomainFO {
 public:
  /// \param domain_size  K in [2, 56] (report = one packed 64-bit word).
  UnaryEncodingFO(uint64_t domain_size, double epsilon);

  uint64_t domain_size() const override { return domain_size_; }
  double epsilon() const override { return epsilon_; }
  std::string Name() const override { return "rappor-unary"; }

  FoReport Encode(uint64_t value, Rng& rng) const override;
  void Aggregate(const FoReport& report) override;
  void Finalize() override {}
  double Estimate(uint64_t value) const override;
  size_t MemoryBytes() const override;

  bool Mergeable() const override { return true; }
  Status Merge(const SmallDomainFO& other) override;
  Status SerializeState(std::string* out) const override;
  Status RestoreState(std::string_view in) override;

 private:
  uint64_t domain_size_;
  double epsilon_;
  double p_;  ///< Pr[report bit = 1 | true bit = 1] = e^{eps/2}/(e^{eps/2}+1).
  double q_;  ///< Pr[report bit = 1 | true bit = 0] = 1 - p.
  uint64_t count_ = 0;
  std::vector<double> ones_;
};

}  // namespace ldphh

#endif  // LDPHH_FREQ_UNARY_ENCODING_H_
