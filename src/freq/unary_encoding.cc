#include "src/freq/unary_encoding.h"

#include <cmath>

#include "src/common/serde.h"
#include "src/common/status.h"

namespace ldphh {

UnaryEncodingFO::UnaryEncodingFO(uint64_t domain_size, double epsilon)
    : domain_size_(domain_size), epsilon_(epsilon) {
  LDPHH_CHECK(domain_size >= 2 && domain_size <= 56,
              "UnaryEncodingFO: domain size must be in [2, 56]");
  LDPHH_CHECK(epsilon > 0.0, "UnaryEncodingFO: epsilon must be positive");
  const double e2 = std::exp(epsilon / 2.0);
  p_ = e2 / (e2 + 1.0);
  q_ = 1.0 - p_;
  ones_.assign(static_cast<size_t>(domain_size), 0.0);
}

FoReport UnaryEncodingFO::Encode(uint64_t value, Rng& rng) const {
  LDPHH_DCHECK(value < domain_size_, "UnaryEncodingFO: value out of domain");
  uint64_t bits = 0;
  for (uint64_t k = 0; k < domain_size_; ++k) {
    const bool truth = (k == value);
    const bool report = rng.Bernoulli(truth ? p_ : q_);
    if (report) bits |= uint64_t{1} << k;
  }
  return FoReport{bits, static_cast<int>(domain_size_)};
}

void UnaryEncodingFO::Aggregate(const FoReport& report) {
  for (uint64_t k = 0; k < domain_size_; ++k) {
    if ((report.bits >> k) & 1) ones_[static_cast<size_t>(k)] += 1.0;
  }
  ++count_;
}

double UnaryEncodingFO::Estimate(uint64_t value) const {
  LDPHH_DCHECK(value < domain_size_, "Estimate: value out of domain");
  return (ones_[static_cast<size_t>(value)] - static_cast<double>(count_) * q_) /
         (p_ - q_);
}

size_t UnaryEncodingFO::MemoryBytes() const {
  return ones_.size() * sizeof(double);
}

Status UnaryEncodingFO::Merge(const SmallDomainFO& other) {
  LDPHH_RETURN_IF_ERROR(CheckMergeCompatible(*this, other));
  const auto& o = static_cast<const UnaryEncodingFO&>(other);
  count_ += o.count_;
  for (size_t i = 0; i < ones_.size(); ++i) ones_[i] += o.ones_[i];
  return Status::OK();
}

Status UnaryEncodingFO::SerializeState(std::string* out) const {
  WriteFoStateHeader(*this, out);
  PutU64(out, count_);
  PutU64(out, ones_.size());
  for (double v : ones_) PutDouble(out, v);
  return Status::OK();
}

Status UnaryEncodingFO::RestoreState(std::string_view in) {
  ByteReader reader(in);
  LDPHH_RETURN_IF_ERROR(CheckFoStateHeader(*this, reader));
  uint64_t count = 0, size = 0;
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&count));
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&size));
  if (size != ones_.size()) {
    return Status::DecodeFailure("rappor-unary state: histogram size mismatch");
  }
  std::vector<double> ones(static_cast<size_t>(size));
  for (double& v : ones) LDPHH_RETURN_IF_ERROR(reader.ReadDouble(&v));
  count_ = count;
  ones_ = std::move(ones);
  return Status::OK();
}

}  // namespace ldphh
