#include "src/freq/hadamard_response.h"

#include <cmath>

#include "src/common/bit_util.h"
#include "src/common/math_util.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/freq/fwht.h"

namespace ldphh {

HadamardResponseFO::HadamardResponseFO(uint64_t domain_size, double epsilon)
    : domain_size_(domain_size),
      table_size_(NextPow2(domain_size)),
      index_bits_(CeilLog2(NextPow2(domain_size))),
      epsilon_(epsilon) {
  LDPHH_CHECK(domain_size >= 1, "HadamardResponseFO: empty domain");
  LDPHH_CHECK(epsilon > 0.0, "HadamardResponseFO: epsilon must be positive");
  const double e = std::exp(epsilon);
  keep_prob_ = e / (e + 1.0);
  debias_ = (e + 1.0) / (e - 1.0);
  acc_.assign(static_cast<size_t>(table_size_), 0.0);
}

FoReport HadamardResponseFO::Encode(uint64_t value, Rng& rng) const {
  LDPHH_DCHECK(value < domain_size_, "HadamardResponseFO: value out of domain");
  const uint64_t index = rng.UniformU64(table_size_);
  int bit = HadamardEntry(index, value);
  if (!rng.Bernoulli(keep_prob_)) bit = -bit;
  FoReport r;
  r.bits = index | (static_cast<uint64_t>(bit > 0 ? 1 : 0) << index_bits_);
  r.num_bits = index_bits_ + 1;
  return r;
}

void HadamardResponseFO::Aggregate(const FoReport& report) {
  LDPHH_DCHECK(!finalized_, "Aggregate after Finalize");
  const uint64_t index = report.bits & (table_size_ - 1);
  const int bit = (report.bits >> index_bits_) & 1 ? 1 : -1;
  acc_[static_cast<size_t>(index)] += static_cast<double>(bit);
}

void HadamardResponseFO::Finalize() {
  LDPHH_DCHECK(!finalized_, "double Finalize");
  Fwht(acc_);
  for (double& v : acc_) v *= debias_;
  finalized_ = true;
}

double HadamardResponseFO::Estimate(uint64_t value) const {
  LDPHH_DCHECK(finalized_, "Estimate before Finalize");
  LDPHH_DCHECK(value < domain_size_, "Estimate: value out of domain");
  return acc_[static_cast<size_t>(value)];
}

size_t HadamardResponseFO::MemoryBytes() const {
  return acc_.size() * sizeof(double);
}

Status HadamardResponseFO::Merge(const SmallDomainFO& other) {
  LDPHH_RETURN_IF_ERROR(CheckMergeCompatible(*this, other));
  const auto& o = static_cast<const HadamardResponseFO&>(other);
  if (finalized_ || o.finalized_) {
    return Status::FailedPrecondition("hadamard-response: Merge after Finalize");
  }
  for (size_t i = 0; i < acc_.size(); ++i) acc_[i] += o.acc_[i];
  return Status::OK();
}

Status HadamardResponseFO::SerializeState(std::string* out) const {
  if (finalized_) {
    return Status::FailedPrecondition(
        "hadamard-response: SerializeState after Finalize");
  }
  WriteFoStateHeader(*this, out);
  PutU64(out, acc_.size());
  for (double v : acc_) PutDouble(out, v);
  return Status::OK();
}

Status HadamardResponseFO::RestoreState(std::string_view in) {
  if (finalized_) {
    return Status::FailedPrecondition(
        "hadamard-response: RestoreState after Finalize");
  }
  ByteReader reader(in);
  LDPHH_RETURN_IF_ERROR(CheckFoStateHeader(*this, reader));
  uint64_t size = 0;
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&size));
  if (size != acc_.size()) {
    return Status::DecodeFailure("hadamard-response state: table size mismatch");
  }
  std::vector<double> acc(static_cast<size_t>(size));
  for (double& v : acc) LDPHH_RETURN_IF_ERROR(reader.ReadDouble(&v));
  acc_ = std::move(acc);
  return Status::OK();
}

}  // namespace ldphh
