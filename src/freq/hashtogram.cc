#include "src/freq/hashtogram.h"

#include <algorithm>
#include <cmath>

#include "src/common/math_util.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/freq/fwht.h"

namespace ldphh {

Hashtogram::Hashtogram(uint64_t n_hint, double epsilon,
                       const HashtogramParams& params, uint64_t seed)
    : epsilon_(epsilon) {
  LDPHH_CHECK(epsilon > 0.0, "Hashtogram: epsilon must be positive");
  rows_ = params.rows;
  if (rows_ <= 0) {
    const double lb = std::log2(3.0 / std::max(1e-12, params.beta));
    rows_ = std::max(8, 2 * static_cast<int>(std::ceil(lb)));
  }
  table_size_ = params.table_size;
  if (table_size_ == 0) {
    const double root = std::sqrt(static_cast<double>(std::max<uint64_t>(n_hint, 16)));
    table_size_ = NextPow2(static_cast<uint64_t>(4.0 * root));
  }
  table_size_ = NextPow2(table_size_);
  index_bits_ = CeilLog2(table_size_);

  const double e = std::exp(epsilon);
  keep_prob_ = e / (e + 1.0);
  debias_ = (e + 1.0) / (e - 1.0);

  Rng seeder(seed);
  row_seed_ = seeder();
  bucket_hash_ = std::make_unique<HashFamily>(rows_, /*k=*/2, table_size_, seeder());
  sign_hash_ = std::make_unique<HashFamily>(rows_, /*k=*/4, /*range=*/2, seeder());
  acc_.assign(static_cast<size_t>(rows_),
              std::vector<double>(static_cast<size_t>(table_size_), 0.0));
}

int Hashtogram::RowOf(uint64_t user_index) const {
  return static_cast<int>(Mix64(row_seed_ ^ user_index) %
                          static_cast<uint64_t>(rows_));
}

FoReport Hashtogram::Encode(uint64_t user_index, const DomainItem& x,
                            Rng& rng) const {
  const int r = RowOf(user_index);
  const uint64_t bucket = bucket_hash_->at(r)(x);
  const int sign = sign_hash_->at(r).Sign(x);
  const uint64_t index = rng.UniformU64(table_size_);
  int bit = HadamardEntry(index, bucket) * sign;
  if (!rng.Bernoulli(keep_prob_)) bit = -bit;
  FoReport report;
  report.bits = index | (static_cast<uint64_t>(bit > 0 ? 1 : 0) << index_bits_);
  report.num_bits = index_bits_ + 1;
  return report;
}

void Hashtogram::Aggregate(uint64_t user_index, const FoReport& report) {
  LDPHH_DCHECK(!finalized_, "Aggregate after Finalize");
  const int r = RowOf(user_index);
  const uint64_t index = report.bits & (table_size_ - 1);
  const int bit = (report.bits >> index_bits_) & 1 ? 1 : -1;
  acc_[static_cast<size_t>(r)][static_cast<size_t>(index)] +=
      static_cast<double>(bit);
}

void Hashtogram::Finalize() {
  LDPHH_DCHECK(!finalized_, "double Finalize");
  for (auto& row : acc_) {
    Fwht(row);
    for (double& v : row) v *= debias_;
  }
  finalized_ = true;
}

double Hashtogram::RowEstimate(int r, const DomainItem& x) const {
  const uint64_t bucket = bucket_hash_->at(r)(x);
  const int sign = sign_hash_->at(r).Sign(x);
  return static_cast<double>(sign) *
         acc_[static_cast<size_t>(r)][static_cast<size_t>(bucket)];
}

double Hashtogram::Estimate(const DomainItem& x) const {
  LDPHH_DCHECK(finalized_, "Estimate before Finalize");
  std::vector<double> per_row(static_cast<size_t>(rows_));
  for (int r = 0; r < rows_; ++r) per_row[static_cast<size_t>(r)] = RowEstimate(r, x);
  return static_cast<double>(rows_) * Median(std::move(per_row));
}

double Hashtogram::EstimateSum(const DomainItem& x) const {
  LDPHH_DCHECK(finalized_, "Estimate before Finalize");
  double acc = 0.0;
  for (int r = 0; r < rows_; ++r) acc += RowEstimate(r, x);
  return acc;
}

Status Hashtogram::Merge(const Hashtogram& other) {
  if (rows_ != other.rows_ || table_size_ != other.table_size_ ||
      epsilon_ != other.epsilon_ || row_seed_ != other.row_seed_) {
    return Status::InvalidArgument("hashtogram: Merge configuration mismatch");
  }
  if (finalized_ || other.finalized_) {
    return Status::FailedPrecondition("hashtogram: Merge after Finalize");
  }
  for (size_t r = 0; r < acc_.size(); ++r) {
    auto& row = acc_[r];
    const auto& orow = other.acc_[r];
    for (size_t t = 0; t < row.size(); ++t) row[t] += orow[t];
  }
  return Status::OK();
}

Status Hashtogram::SerializeState(std::string* out) const {
  if (finalized_) {
    return Status::FailedPrecondition("hashtogram: SerializeState after Finalize");
  }
  PutU32(out, kFoStateMagic);
  PutU16(out, kFoStateVersion);
  PutLengthPrefixed(out, "hashtogram");
  PutU32(out, static_cast<uint32_t>(rows_));
  PutU64(out, table_size_);
  PutU64(out, row_seed_);
  for (const auto& row : acc_) {
    for (double v : row) PutDouble(out, v);
  }
  return Status::OK();
}

Status Hashtogram::RestoreState(std::string_view in) {
  if (finalized_) {
    return Status::FailedPrecondition("hashtogram: RestoreState after Finalize");
  }
  ByteReader reader(in);
  uint32_t magic = 0;
  uint16_t version = 0;
  std::string_view name;
  LDPHH_RETURN_IF_ERROR(reader.ReadU32(&magic));
  LDPHH_RETURN_IF_ERROR(reader.ReadU16(&version));
  LDPHH_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&name));
  if (magic != kFoStateMagic || version != kFoStateVersion ||
      name != "hashtogram") {
    return Status::DecodeFailure("hashtogram state: bad header");
  }
  uint32_t rows = 0;
  uint64_t table = 0, row_seed = 0;
  LDPHH_RETURN_IF_ERROR(reader.ReadU32(&rows));
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&table));
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&row_seed));
  if (rows != static_cast<uint32_t>(rows_) || table != table_size_ ||
      row_seed != row_seed_) {
    return Status::InvalidArgument("hashtogram state: configuration mismatch");
  }
  std::vector<std::vector<double>> acc(
      static_cast<size_t>(rows_),
      std::vector<double>(static_cast<size_t>(table_size_)));
  for (auto& row : acc) {
    for (double& v : row) LDPHH_RETURN_IF_ERROR(reader.ReadDouble(&v));
  }
  acc_ = std::move(acc);
  return Status::OK();
}

size_t Hashtogram::MemoryBytes() const {
  return static_cast<size_t>(rows_) * static_cast<size_t>(table_size_) *
         sizeof(double);
}

}  // namespace ldphh
