#include "src/freq/freq_oracle.h"

#include <cstring>

#include "src/common/serde.h"

namespace ldphh {

namespace {

uint64_t EpsilonBits(const SmallDomainFO& fo) {
  const double eps = fo.epsilon();
  uint64_t bits;
  std::memcpy(&bits, &eps, 8);
  return bits;
}

}  // namespace

void WriteFoStateHeader(const SmallDomainFO& fo, std::string* out) {
  PutU32(out, kFoStateMagic);
  PutU16(out, kFoStateVersion);
  PutLengthPrefixed(out, fo.Name());
  PutU64(out, fo.domain_size());
  PutU64(out, EpsilonBits(fo));
}

Status CheckFoStateHeader(const SmallDomainFO& fo, ByteReader& reader) {
  uint32_t magic = 0;
  LDPHH_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kFoStateMagic) {
    return Status::DecodeFailure("oracle state: bad magic");
  }
  uint16_t version = 0;
  LDPHH_RETURN_IF_ERROR(reader.ReadU16(&version));
  if (version != kFoStateVersion) {
    return Status::DecodeFailure("oracle state: unsupported version");
  }
  std::string_view name;
  LDPHH_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&name));
  if (name != fo.Name()) {
    return Status::InvalidArgument("oracle state: snapshot is for oracle '" +
                                   std::string(name) + "', restoring into '" +
                                   fo.Name() + "'");
  }
  uint64_t domain = 0, eps_bits = 0;
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&domain));
  LDPHH_RETURN_IF_ERROR(reader.ReadU64(&eps_bits));
  if (domain != fo.domain_size() || eps_bits != EpsilonBits(fo)) {
    return Status::InvalidArgument(
        fo.Name() + ": snapshot configuration (domain, epsilon) mismatch");
  }
  return Status::OK();
}

Status CheckMergeCompatible(const SmallDomainFO& self,
                            const SmallDomainFO& other) {
  if (self.Name() != other.Name()) {
    return Status::InvalidArgument("Merge: oracle type mismatch (" +
                                   self.Name() + " vs " + other.Name() + ")");
  }
  if (self.domain_size() != other.domain_size() ||
      EpsilonBits(self) != EpsilonBits(other)) {
    return Status::InvalidArgument(self.Name() +
                                   ": Merge configuration mismatch");
  }
  return Status::OK();
}

}  // namespace ldphh
