/// \file direct_encoding.h
/// \brief k-ary randomized response frequency oracle ("direct encoding").
///
/// The oldest LDP frequency oracle (Warner 1965 generalized): report the
/// true value with probability e^eps / (e^eps + K - 1), otherwise a uniform
/// other value. Error grows as sqrt(K), so it is only competitive for tiny
/// domains; included as the classical baseline for the ablation bench A1.

#ifndef LDPHH_FREQ_DIRECT_ENCODING_H_
#define LDPHH_FREQ_DIRECT_ENCODING_H_

#include <vector>

#include "src/freq/freq_oracle.h"

namespace ldphh {

/// \brief k-ary randomized response FO.
class DirectEncodingFO final : public SmallDomainFO {
 public:
  DirectEncodingFO(uint64_t domain_size, double epsilon);

  uint64_t domain_size() const override { return domain_size_; }
  double epsilon() const override { return epsilon_; }
  std::string Name() const override { return "k-rr"; }

  FoReport Encode(uint64_t value, Rng& rng) const override;
  void Aggregate(const FoReport& report) override;
  void Finalize() override {}
  double Estimate(uint64_t value) const override;
  size_t MemoryBytes() const override;

  bool Mergeable() const override { return true; }
  Status Merge(const SmallDomainFO& other) override;
  Status SerializeState(std::string* out) const override;
  Status RestoreState(std::string_view in) override;

 private:
  uint64_t domain_size_;
  int value_bits_;
  double epsilon_;
  double keep_prob_;   ///< p = e^eps / (e^eps + K - 1).
  double other_prob_;  ///< q = 1 / (e^eps + K - 1).
  uint64_t count_ = 0;
  std::vector<double> hist_;
};

}  // namespace ldphh

#endif  // LDPHH_FREQ_DIRECT_ENCODING_H_
