/// \file olh.h
/// \brief Optimized Local Hashing (Wang et al. 2017) frequency oracle.
///
/// Every user hashes the value with a personal public hash into a range of
/// size g = round(e^eps) + 1 (the variance-optimal choice) and reports the
/// hashed value through g-ary randomized response. Server estimation needs
/// the per-user hashes again, so queries cost O(n); OLH trades server time
/// for the best constant-factor accuracy among simple oracles. Included as
/// the modern-practice baseline in the ablation bench A1.

#ifndef LDPHH_FREQ_OLH_H_
#define LDPHH_FREQ_OLH_H_

#include <vector>

#include "src/freq/freq_oracle.h"

namespace ldphh {

/// \brief OLH frequency oracle.
///
/// Report convention: `Encode` must be called with increasing user indices
/// via `EncodeForUser`; the plain `Encode` assigns indices sequentially and
/// is not thread-safe (single-simulation use).
class OlhFO final : public SmallDomainFO {
 public:
  OlhFO(uint64_t domain_size, double epsilon, uint64_t seed);

  uint64_t domain_size() const override { return domain_size_; }
  double epsilon() const override { return epsilon_; }
  std::string Name() const override { return "olh"; }

  /// Client encode for an explicit user index (the index selects the
  /// personal hash; it is public information, not part of the report).
  FoReport EncodeForUser(uint64_t user_index, uint64_t value, Rng& rng) const;

  FoReport Encode(uint64_t value, Rng& rng) const override;
  void Aggregate(const FoReport& report) override;
  void AggregateIndexed(uint64_t user_index, const FoReport& report) override;
  void Finalize() override {}
  double Estimate(uint64_t value) const override;
  size_t MemoryBytes() const override;

  bool Mergeable() const override { return true; }
  /// Merge contract: the two oracles must have aggregated reports for
  /// *disjoint user-index sets* (the sharded path guarantees this by
  /// routing each user to exactly one shard). Merging two streams fed via
  /// the un-indexed Aggregate() overload violates this — both number their
  /// users from 0 — and silently biases estimates; always use
  /// AggregateIndexed when states will be merged. Disjointness is not
  /// checked: shard index sets interleave, so range checks would false-
  /// positive and a full set would cost O(n) memory.
  Status Merge(const SmallDomainFO& other) override;
  Status SerializeState(std::string* out) const override;
  Status RestoreState(std::string_view in) override;

  /// The hash range g.
  uint64_t hash_range() const { return g_; }

 private:
  uint64_t PersonalHash(uint64_t user_index, uint64_t value) const;

  uint64_t domain_size_;
  double epsilon_;
  uint64_t g_;
  int report_bits_;
  double keep_prob_;  ///< e^eps / (e^eps + g - 1).
  uint64_t seed_;
  mutable uint64_t next_user_ = 0;
  uint64_t next_agg_index_ = 0;  ///< Arrival counter for un-indexed Aggregate.
  /// Stored (user_index, hashed report) pairs. The index selects the user's
  /// personal hash at query time, so reports may arrive in any order and
  /// from any shard.
  std::vector<std::pair<uint64_t, uint32_t>> reports_;
};

}  // namespace ldphh

#endif  // LDPHH_FREQ_OLH_H_
