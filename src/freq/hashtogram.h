/// \file hashtogram.h
/// \brief Hashtogram (Bassily-Nissim-Stemmer-Thakurta 2017; Theorem 3.7):
/// an eps-LDP frequency oracle over an arbitrary domain X with
///   error        O( (1/eps) sqrt(n log(min(n,|X|)/beta)) ),
///   server memory O~(sqrt(n)), server time O~(n), O~(1) per query,
///   user cost    O~(1) time / memory / communication.
///
/// Construction: users are partitioned into R = O(log(1/beta)) rows by a
/// public hash of the user index. Row r carries a pairwise hash
/// h_r : X -> [T] (T = O~(sqrt(n))) and a 4-wise sign s_r : X -> {+-1}.
/// A user in row r holding x reports one randomized-response bit of the
/// Hadamard code of h_r(x), signed by s_r(x): it samples l in [T] and sends
/// (l, RR(H[l, h_r(x)] * s_r(x))). The server FWHTs each row's report
/// histogram into per-bucket signed counts c_r[t]; the frequency estimate is
///   f^(x) = R * median_r ( s_r(x) * c_r[h_r(x)] ).
/// The median over rows gives the log(1/beta) confidence and robustness to
/// the rare hash collisions with heavy elements; the sign hash makes
/// colliding light mass mean-zero.

#ifndef LDPHH_FREQ_HASHTOGRAM_H_
#define LDPHH_FREQ_HASHTOGRAM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bit_util.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/freq/freq_oracle.h"
#include "src/hashing/kwise_hash.h"

namespace ldphh {

/// Tuning parameters for Hashtogram.
struct HashtogramParams {
  /// Rows (repetitions). 0 = auto: max(8, 2 ceil(log2(3/beta))).
  int rows = 0;
  /// Hash range per row. 0 = auto: next_pow2(4 sqrt(n)).
  uint64_t table_size = 0;
  /// Failure probability target used by the auto rules.
  double beta = 1e-3;
};

/// \brief Theorem 3.7 frequency oracle over DomainItem values.
class Hashtogram {
 public:
  /// \param n_hint   expected number of users (drives the auto parameters).
  /// \param epsilon  per-user privacy parameter.
  /// \param params   tuning; see HashtogramParams.
  /// \param seed     public-randomness seed (shared by users and server).
  Hashtogram(uint64_t n_hint, double epsilon, const HashtogramParams& params,
             uint64_t seed);

  /// Row assigned to a user (public: derived from the user index).
  int RowOf(uint64_t user_index) const;

  /// Client: privatizes item \p x for user \p user_index.
  FoReport Encode(uint64_t user_index, const DomainItem& x, Rng& rng) const;

  /// Server: absorbs the report of user \p user_index.
  void Aggregate(uint64_t user_index, const FoReport& report);

  /// Server: closes aggregation (one FWHT per row).
  void Finalize();

  /// Median-of-rows estimate (robust; the default).
  double Estimate(const DomainItem& x) const;
  /// Sum-of-rows estimate (unbiased; larger tail).
  double EstimateSum(const DomainItem& x) const;

  /// Folds \p other's (same-configuration, un-finalized) row histograms
  /// into this oracle; exact — equivalent to one oracle seeing all reports.
  Status Merge(const Hashtogram& other);
  /// Binary snapshot of the aggregation state (row histograms only — the
  /// hash families are reconstructed from the constructor seed).
  Status SerializeState(std::string* out) const;
  /// Restores a SerializeState snapshot into this (same-configuration,
  /// un-finalized) oracle.
  Status RestoreState(std::string_view in);

  double epsilon() const { return epsilon_; }
  int rows() const { return rows_; }
  uint64_t table_size() const { return table_size_; }
  /// Server memory in bytes.
  size_t MemoryBytes() const;
  /// Report size in bits.
  int ReportBits() const { return index_bits_ + 1; }

 private:
  double RowEstimate(int r, const DomainItem& x) const;

  double epsilon_;
  int rows_;
  uint64_t table_size_;
  int index_bits_;
  double keep_prob_;
  double debias_;
  uint64_t row_seed_;
  std::unique_ptr<HashFamily> bucket_hash_;  ///< h_r : X -> [T], pairwise.
  std::unique_ptr<HashFamily> sign_hash_;    ///< s_r : X -> {+-1}, 4-wise.
  bool finalized_ = false;
  std::vector<std::vector<double>> acc_;     ///< Per-row index histograms.
};

}  // namespace ldphh

#endif  // LDPHH_FREQ_HASHTOGRAM_H_
