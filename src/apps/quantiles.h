/// \file quantiles.h
/// \brief LDP quantile / median estimation on top of the frequency-oracle
/// substrate — the first downstream application the paper's introduction
/// names ("LDP algorithms for heavy-hitters provide important subroutines
/// for solving many other problems, such as median estimation ...").
///
/// Construction: the classic hierarchical (dyadic) histogram. Each user is
/// assigned one of the B levels of the dyadic tree over [0, 2^B) and
/// reports its value's interval at that level through the Theorem 3.8
/// Hadamard-response oracle. Any CDF query decomposes into at most B
/// dyadic intervals (one per level), so
///   |CDF^(x) - CDF(x)| = O((B/eps) sqrt(n B log(1/beta)) / ... )
/// = O~(sqrt(n) poly(B) / eps), and quantiles follow by binary search.

#ifndef LDPHH_APPS_QUANTILES_H_
#define LDPHH_APPS_QUANTILES_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/freq/hadamard_response.h"

namespace ldphh {

/// Parameters for the quantile sketch.
struct QuantileSketchParams {
  int value_bits = 16;   ///< Values live in [0, 2^value_bits); <= 20.
  double epsilon = 1.0;  ///< Per-user privacy budget.
};

/// \brief eps-LDP quantile sketch over integer values.
///
/// Usage mirrors the frequency oracles: Encode per user (client side),
/// Aggregate per report, Finalize once, then EstimateCdf / EstimateQuantile.
class QuantileSketch {
 public:
  QuantileSketch(uint64_t n_hint, const QuantileSketchParams& params,
                 uint64_t seed);

  /// Client: privatizes \p value for user \p user_index. The level
  /// assignment is public (derived from the index); the report leaks only
  /// an eps-LDP view of the value's dyadic interval at that level.
  FoReport Encode(uint64_t user_index, uint64_t value, Rng& rng) const;

  /// Server: absorbs one report.
  void Aggregate(uint64_t user_index, const FoReport& report);
  /// Server: closes aggregation.
  void Finalize();

  /// Estimated number of users with value < \p x.
  double EstimateCdf(uint64_t x) const;

  /// Estimated q-quantile (q in [0, 1]): the smallest x whose estimated
  /// CDF reaches q * n.
  uint64_t EstimateQuantile(double q) const;

  /// Estimated median.
  uint64_t EstimateMedian() const { return EstimateQuantile(0.5); }

  int value_bits() const { return value_bits_; }
  double epsilon() const { return epsilon_; }
  size_t MemoryBytes() const;

 private:
  int LevelOf(uint64_t user_index) const;

  int value_bits_;
  double epsilon_;
  uint64_t level_seed_;
  uint64_t total_reports_ = 0;
  bool finalized_ = false;
  /// Oracle for level l (l = 1..B): domain 2^l dyadic intervals. Index 0
  /// of the vector is level 1.
  std::vector<std::unique_ptr<HadamardResponseFO>> levels_;
};

}  // namespace ldphh

#endif  // LDPHH_APPS_QUANTILES_H_
