#include "src/apps/quantiles.h"

#include <cmath>

namespace ldphh {

QuantileSketch::QuantileSketch(uint64_t n_hint, const QuantileSketchParams& params,
                               uint64_t seed)
    : value_bits_(params.value_bits), epsilon_(params.epsilon) {
  LDPHH_CHECK(value_bits_ >= 2 && value_bits_ <= 20,
              "QuantileSketch: value_bits must be in [2, 20]");
  LDPHH_CHECK(epsilon_ > 0.0, "QuantileSketch: epsilon must be positive");
  (void)n_hint;
  Rng seeder(seed);
  level_seed_ = seeder();
  levels_.reserve(static_cast<size_t>(value_bits_));
  for (int l = 1; l <= value_bits_; ++l) {
    levels_.push_back(
        std::make_unique<HadamardResponseFO>(uint64_t{1} << l, epsilon_));
  }
}

int QuantileSketch::LevelOf(uint64_t user_index) const {
  return static_cast<int>(Mix64(level_seed_ ^ user_index) %
                          static_cast<uint64_t>(value_bits_));
}

FoReport QuantileSketch::Encode(uint64_t user_index, uint64_t value,
                                Rng& rng) const {
  LDPHH_DCHECK(value < (uint64_t{1} << value_bits_),
               "QuantileSketch: value out of range");
  const int level = LevelOf(user_index);  // 0-based: oracle level l+1.
  // The value's dyadic interval at level l+1: the top (l+1) bits.
  const uint64_t interval = value >> (value_bits_ - (level + 1));
  return levels_[static_cast<size_t>(level)]->Encode(interval, rng);
}

void QuantileSketch::Aggregate(uint64_t user_index, const FoReport& report) {
  LDPHH_DCHECK(!finalized_, "Aggregate after Finalize");
  levels_[static_cast<size_t>(LevelOf(user_index))]->Aggregate(report);
  ++total_reports_;
}

void QuantileSketch::Finalize() {
  LDPHH_DCHECK(!finalized_, "double Finalize");
  for (auto& fo : levels_) fo->Finalize();
  finalized_ = true;
}

double QuantileSketch::EstimateCdf(uint64_t x) const {
  LDPHH_DCHECK(finalized_, "EstimateCdf before Finalize");
  if (x == 0) return 0.0;
  const uint64_t cap = uint64_t{1} << value_bits_;
  if (x >= cap) return static_cast<double>(total_reports_);
  // Dyadic decomposition of [0, x): for every set bit j of x, the interval
  // of width 2^j at tree level B - j with index (x >> j) - 1.
  double acc = 0.0;
  for (int j = 0; j < value_bits_; ++j) {
    if (((x >> j) & 1) == 0) continue;
    const int level = value_bits_ - j;          // 1-based oracle level.
    const uint64_t interval = (x >> j) - 1;
    // Each user reported at one uniformly chosen of B levels: the level
    // estimate sees ~n/B of the population, so scale by B.
    acc += static_cast<double>(value_bits_) *
           levels_[static_cast<size_t>(level - 1)]->Estimate(interval);
  }
  return acc;
}

uint64_t QuantileSketch::EstimateQuantile(double q) const {
  LDPHH_DCHECK(finalized_, "EstimateQuantile before Finalize");
  const double target = q * static_cast<double>(total_reports_);
  uint64_t lo = 0;
  uint64_t hi = uint64_t{1} << value_bits_;
  // Smallest x with CDF^(x) >= target. CDF^ is not exactly monotone (each
  // point is an independent noisy sum), but the dyadic structure keeps the
  // binary search within the noise envelope of the true quantile.
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (EstimateCdf(mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

size_t QuantileSketch::MemoryBytes() const {
  size_t acc = 0;
  for (const auto& fo : levels_) acc += fo->MemoryBytes();
  return acc;
}

}  // namespace ldphh
