#include "src/protocols/succinct_hist.h"

#include <algorithm>
#include <cmath>

#include "src/common/math_util.h"
#include "src/common/random.h"
#include "src/common/timer.h"

namespace ldphh {

StatusOr<SuccinctHist> SuccinctHist::Create(const SuccinctHistParams& params) {
  if (params.domain_bits < 4 || params.domain_bits > 24) {
    return Status::InvalidArgument(
        "SuccinctHist: the full-domain scan needs domain_bits in [4, 24]");
  }
  if (params.epsilon <= 0.0) {
    return Status::InvalidArgument("SuccinctHist: epsilon must be positive");
  }
  return SuccinctHist(params);
}

double SuccinctHist::DetectionThreshold(uint64_t n) const {
  const double e = std::exp(params_.epsilon);
  const double c = (e + 1.0) / (e - 1.0);
  return params_.threshold_sigmas * c *
         std::sqrt(static_cast<double>(n) *
                   (static_cast<double>(params_.domain_bits) * std::log(2.0) +
                    std::log(1.0 / params_.beta)));
}

StatusOr<HeavyHitterResult> SuccinctHist::Run(
    const std::vector<DomainItem>& database, uint64_t seed) {
  const uint64_t n = database.size();
  if (n < 16) return Status::InvalidArgument("SuccinctHist: need >= 16 users");
  const uint64_t domain = uint64_t{1} << params_.domain_bits;

  const double e = std::exp(params_.epsilon);
  const double keep = e / (e + 1.0);

  Rng master(seed);
  const uint64_t sign_seed = master();
  Rng user_coins(master());

  HeavyHitterResult result;
  result.metrics.num_users = n;

  std::vector<std::pair<uint64_t, int8_t>> reports;
  reports.reserve(static_cast<size_t>(n));
  Timer user_timer;
  for (uint64_t i = 0; i < n; ++i) {
    int bit = SuccinctHistSign(sign_seed, i, database[i]);
    if (!user_coins.Bernoulli(keep)) bit = -bit;
    reports.emplace_back(i, static_cast<int8_t>(bit));
  }
  result.metrics.user_seconds_total = user_timer.Seconds();
  result.metrics.comm_bits_total = n;  // One bit each.
  result.metrics.comm_bits_max_user = 1;

  // Server: full-domain scan, Theta(n) work per domain element.
  Timer server_timer;
  const double tau = DetectionThreshold(n);
  result.entries = SuccinctHistScan(sign_seed, reports, params_.domain_bits,
                                    params_.epsilon, tau, params_.list_cap);
  result.metrics.server_seconds = server_timer.Seconds();
  result.metrics.server_memory_bytes =
      reports.size() * sizeof(decltype(reports)::value_type);
  // Without random access, a user materializes the sign table over X
  // (Table 1's O~(n^1.5) with |X| = n^1.5): account, do not simulate.
  result.metrics.public_random_bits_per_user = domain;
  return result;
}

std::vector<HeavyHitterEntry> SuccinctHistScan(
    uint64_t sign_seed, const std::vector<std::pair<uint64_t, int8_t>>& reports,
    int domain_bits, double epsilon, double tau, int list_cap) {
  const uint64_t domain = uint64_t{1} << domain_bits;
  const double e = std::exp(epsilon);
  const double c_eps = (e + 1.0) / (e - 1.0);
  struct Scored {
    uint64_t value;
    double estimate;
  };
  std::vector<Scored> hits;
  for (uint64_t v = 0; v < domain; ++v) {
    const DomainItem item(v);
    // The summands are +-1, so the accumulator is integer-valued and the
    // sum is exact in any order — the merge-equivalence guarantee.
    double acc = 0.0;
    for (const auto& [user, bit] : reports) {
      acc += static_cast<double>(bit) *
             static_cast<double>(SuccinctHistSign(sign_seed, user, item));
    }
    const double estimate = c_eps * acc;
    if (estimate >= tau) hits.push_back(Scored{v, estimate});
  }
  // Canonical order (estimate descending, ties value ascending — a total
  // order), applied whether or not the cap truncates, so the documented
  // sorted-ness holds on every path and equal state scans byte-identically.
  std::sort(hits.begin(), hits.end(), [](const Scored& a, const Scored& b) {
    if (a.estimate != b.estimate) return a.estimate > b.estimate;
    return a.value < b.value;
  });
  if (static_cast<int>(hits.size()) > list_cap) {
    hits.resize(static_cast<size_t>(list_cap));
  }
  std::vector<HeavyHitterEntry> entries;
  entries.reserve(hits.size());
  for (const Scored& s : hits) {
    entries.push_back(HeavyHitterEntry{DomainItem(s.value), s.estimate});
  }
  return entries;
}

}  // namespace ldphh
