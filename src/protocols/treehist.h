/// \file treehist.h
/// \brief TreeHist — the prefix-tree heavy-hitters protocol of Bassily-
/// Nissim-Stemmer-Thakurta 2017 (the second algorithm of the paper's [3]).
///
/// Users are split across the D levels of a binary prefix tree over the
/// item bits; a user at level l reports the l-bit prefix of its item
/// through a per-level frequency oracle (Hashtogram). The server grows the
/// candidate set breadth-first: a prefix survives iff its estimated count
/// clears the threshold, and each survivor spawns two children. Surviving
/// leaves are the heavy-hitter candidates, re-estimated by a global oracle.
///
/// Compared to Bitstogram, TreeHist trades the single hash-decode for
/// log|X| adaptive levels; its error carries the same extra
/// sqrt(log(1/beta)) factor relative to PrivateExpanderSketch, which makes
/// it the second baseline for the F1 comparison.

#ifndef LDPHH_PROTOCOLS_TREEHIST_H_
#define LDPHH_PROTOCOLS_TREEHIST_H_

#include <cstdint>
#include <vector>

#include "src/freq/hashtogram.h"
#include "src/protocols/heavy_hitters.h"

namespace ldphh {

/// Tuning parameters for TreeHist.
struct TreeHistParams {
  int domain_bits = 64;
  double epsilon = 2.0;
  double beta = 1e-3;

  double threshold_sigmas = 3.0;  ///< Survival test on per-level estimates.
  int frontier_cap = 64;          ///< Max surviving prefixes per level.

  /// Server aggregation shards (>= 1). With S > 1 the server aggregates
  /// reports on S threads over per-shard oracle replicas and merges them;
  /// the result is bit-for-bit identical to the single-threaded run.
  int num_shards = 1;

  HashtogramParams level_fo;   ///< Per-level oracle tuning (beta auto-fill).
  HashtogramParams global_fo;  ///< Final estimation oracle tuning.
};

/// \brief The [3] prefix-tree baseline protocol.
class TreeHist final : public HeavyHitterProtocol {
 public:
  static StatusOr<TreeHist> Create(const TreeHistParams& params);

  StatusOr<HeavyHitterResult> Run(const std::vector<DomainItem>& database,
                                  uint64_t seed) override;
  std::string Name() const override { return "treehist"; }
  double Epsilon() const override { return params_.epsilon; }

  /// Detection threshold analogue: ~sigmas c_{eps/2} sqrt(n D R) where R is
  /// the per-level oracle's row count (the log(1/beta) amplification).
  double DetectionThreshold(uint64_t n) const;

  const TreeHistParams& params() const { return params_; }

 private:
  explicit TreeHist(const TreeHistParams& params) : params_(params) {}

  TreeHistParams params_;
};

/// Breadth-first frontier growth (the server decode step), shared by Run
/// and the streaming serving aggregator (src/protocols/hh_serving.h). A
/// level-l prefix survives iff its level oracle's estimate clears
/// threshold_sigmas * c_eps * sqrt(n_l * rows); survivors spawn two
/// children, capped at \p frontier_cap per level. \p level_fo must be
/// finalized; \p level_counts[l] is the number of users assigned to level l.
/// Returns the surviving leaves in frontier order.
std::vector<DomainItem> TreeHistGrowFrontier(
    const std::vector<Hashtogram>& level_fo,
    const std::vector<uint64_t>& level_counts, int domain_bits, double c_eps,
    double threshold_sigmas, int frontier_cap);

}  // namespace ldphh

#endif  // LDPHH_PROTOCOLS_TREEHIST_H_
