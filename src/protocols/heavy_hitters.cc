#include "src/protocols/heavy_hitters.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace ldphh {

std::vector<std::pair<DomainItem, uint64_t>> ExactFrequencies(
    const std::vector<DomainItem>& database) {
  std::unordered_map<DomainItem, uint64_t, DomainItemHash> freq;
  freq.reserve(database.size());
  for (const DomainItem& x : database) ++freq[x];
  std::vector<std::pair<DomainItem, uint64_t>> out(freq.begin(), freq.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

HeavyHitterEval EvaluateHeavyHitters(const std::vector<DomainItem>& database,
                                     const HeavyHitterResult& result,
                                     uint64_t threshold) {
  std::unordered_map<DomainItem, uint64_t, DomainItemHash> freq;
  freq.reserve(database.size());
  for (const DomainItem& x : database) ++freq[x];

  HeavyHitterEval eval;
  eval.list_size = result.entries.size();

  std::unordered_map<DomainItem, double, DomainItemHash> listed;
  listed.reserve(result.entries.size());
  for (const auto& entry : result.entries) {
    listed[entry.item] = entry.estimate;
    const auto it = freq.find(entry.item);
    const double truth =
        it == freq.end() ? 0.0 : static_cast<double>(it->second);
    eval.max_estimate_error =
        std::max(eval.max_estimate_error, std::abs(entry.estimate - truth));
  }

  for (const auto& [item, count] : freq) {
    const bool found = listed.count(item) > 0;
    if (count >= threshold) {
      ++eval.true_hitters_total;
      if (found) ++eval.true_hitters_found;
    }
    if (!found) {
      eval.max_missed_frequency = std::max(eval.max_missed_frequency, count);
    }
  }
  return eval;
}

}  // namespace ldphh
