#include "src/protocols/protocol_config.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/serde.h"

namespace ldphh {

namespace {

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

bool IsValueChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '+' || c == '-' ||
         c == '.';
}

bool ValidName(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

bool ValidValue(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsValueChar(c)) return false;
  }
  return true;
}

Status BadKey(std::string_view key, const char* what) {
  return Status::InvalidArgument("protocol config: param '" +
                                 std::string(key) + "' " + what);
}

}  // namespace

ProtocolConfig& ProtocolConfig::Set(std::string_view key,
                                    std::string_view value) {
  LDPHH_CHECK(ValidName(key), "protocol config: malformed param key");
  LDPHH_CHECK(ValidValue(value), "protocol config: malformed param value");
  params_[std::string(key)] = std::string(value);
  return *this;
}

ProtocolConfig& ProtocolConfig::SetUint(std::string_view key, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return Set(key, buf);
}

ProtocolConfig& ProtocolConfig::SetInt(std::string_view key, int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return Set(key, buf);
}

ProtocolConfig& ProtocolConfig::SetDouble(std::string_view key, double value) {
  // Shortest decimal form that parses back to the same double: try
  // increasing precision until the round-trip is exact ("1" instead of
  // "1.0000000000000000e+00" keeps configs readable).
  char buf[40];
  for (int precision = 0; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return Set(key, buf);
}

Status ProtocolConfig::GetUint(std::string_view key, uint64_t* out) const {
  const auto it = params_.find(std::string(key));
  if (it == params_.end()) return BadKey(key, "is required");
  const std::string& v = it->second;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end != v.c_str() + v.size() || v[0] == '-') {
    return BadKey(key, ("is not an unsigned integer: '" + v + "'").c_str());
  }
  *out = parsed;
  return Status::OK();
}

Status ProtocolConfig::GetUintIn(std::string_view key, uint64_t fallback,
                                 uint64_t min_value, uint64_t max_value,
                                 uint64_t* out) const {
  if (!Has(key)) {
    *out = fallback;
    return Status::OK();
  }
  uint64_t value = 0;
  LDPHH_RETURN_IF_ERROR(GetUint(key, &value));
  if (value < min_value || value > max_value) {
    return BadKey(key, ("must be in [" + std::to_string(min_value) + ", " +
                        std::to_string(max_value) + "]")
                           .c_str());
  }
  *out = value;
  return Status::OK();
}

Status ProtocolConfig::GetInt(std::string_view key, int64_t* out) const {
  const auto it = params_.find(std::string(key));
  if (it == params_.end()) return BadKey(key, "is required");
  const std::string& v = it->second;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (errno != 0 || end != v.c_str() + v.size()) {
    return BadKey(key, ("is not an integer: '" + v + "'").c_str());
  }
  *out = parsed;
  return Status::OK();
}

Status ProtocolConfig::GetDouble(std::string_view key, double* out) const {
  const auto it = params_.find(std::string(key));
  if (it == params_.end()) return BadKey(key, "is required");
  const std::string& v = it->second;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v.c_str(), &end);
  if (errno != 0 || end != v.c_str() + v.size()) {
    return BadKey(key, ("is not a number: '" + v + "'").c_str());
  }
  *out = parsed;
  return Status::OK();
}

uint64_t ProtocolConfig::GetUintOr(std::string_view key,
                                   uint64_t fallback) const {
  uint64_t v = 0;
  return GetUint(key, &v).ok() ? v : fallback;
}

int64_t ProtocolConfig::GetIntOr(std::string_view key, int64_t fallback) const {
  int64_t v = 0;
  return GetInt(key, &v).ok() ? v : fallback;
}

double ProtocolConfig::GetDoubleOr(std::string_view key,
                                   double fallback) const {
  double v = 0.0;
  return GetDouble(key, &v).ok() ? v : fallback;
}

Status ProtocolConfig::ExpectKeys(
    std::initializer_list<std::string_view> allowed) const {
  for (const auto& [key, value] : params_) {
    bool known = false;
    for (std::string_view a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("protocol config: " + protocol_ +
                                     " does not take param '" + key + "'");
    }
  }
  return Status::OK();
}

std::string ProtocolConfig::ToText() const {
  std::string out = protocol_;
  out += '(';
  bool first = true;
  for (const auto& [key, value] : params_) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += '=';
    out += value;
  }
  out += ')';
  return out;
}

StatusOr<ProtocolConfig> ProtocolConfig::FromText(std::string_view text) {
  const size_t open = text.find('(');
  if (open == std::string_view::npos || text.empty() ||
      text.back() != ')') {
    return Status::InvalidArgument(
        "protocol config: expected 'name(k=v,...)', got '" +
        std::string(text) + "'");
  }
  ProtocolConfig config;
  config.protocol_ = std::string(text.substr(0, open));
  if (!ValidName(config.protocol_)) {
    return Status::InvalidArgument("protocol config: malformed name '" +
                                   config.protocol_ + "'");
  }
  std::string_view body = text.substr(open + 1, text.size() - open - 2);
  while (!body.empty()) {
    const size_t comma = body.find(',');
    const bool had_comma = comma != std::string_view::npos;
    const std::string_view param = had_comma ? body.substr(0, comma) : body;
    body = had_comma ? body.substr(comma + 1) : std::string_view();
    if (param.empty() || (had_comma && body.empty())) {
      // Rejects a leading/doubled comma (empty param) and a trailing comma
      // (a comma with nothing after it): the grammar has no empty param,
      // and accepting one would break serialize(parse(s)) == s.
      return Status::InvalidArgument(
          "protocol config: empty param (stray comma) in '" +
          std::string(text) + "'");
    }
    const size_t eq = param.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          "protocol config: param without '=': '" + std::string(param) + "'");
    }
    const std::string_view key = param.substr(0, eq);
    const std::string_view value = param.substr(eq + 1);
    if (!ValidName(key)) {
      return Status::InvalidArgument("protocol config: malformed param key '" +
                                     std::string(key) + "'");
    }
    if (!ValidValue(value)) {
      return Status::InvalidArgument(
          "protocol config: malformed value for '" + std::string(key) +
          "': '" + std::string(value) + "'");
    }
    if (!config.params_.emplace(std::string(key), std::string(value)).second) {
      return Status::InvalidArgument("protocol config: duplicate param '" +
                                     std::string(key) + "'");
    }
  }
  return config;
}

void ProtocolConfig::AppendTo(std::string* out) const {
  PutLengthPrefixed(out, ToText());
}

Status ProtocolConfig::ReadFrom(ByteReader& reader, ProtocolConfig* out) {
  std::string_view text;
  LDPHH_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&text));
  auto config_or = FromText(text);
  LDPHH_RETURN_IF_ERROR(config_or.status());
  *out = std::move(config_or).value();
  return Status::OK();
}

bool ProtocolConfig::operator==(const ProtocolConfig& other) const {
  return protocol_ == other.protocol_ && params_ == other.params_;
}

}  // namespace ldphh
