/// \file heavy_hitters.h
/// \brief The heavy-hitters problem interface (Definition 3.1) and the
/// evaluation helpers that check a protocol's output against it.

#ifndef LDPHH_PROTOCOLS_HEAVY_HITTERS_H_
#define LDPHH_PROTOCOLS_HEAVY_HITTERS_H_

#include <string>
#include <vector>

#include "src/common/bit_util.h"
#include "src/common/status.h"
#include "src/protocols/metrics.h"

namespace ldphh {

/// One output entry: an identified element and its frequency estimate.
struct HeavyHitterEntry {
  DomainItem item;
  double estimate = 0.0;
};

/// Full protocol output.
struct HeavyHitterResult {
  std::vector<HeavyHitterEntry> entries;
  ProtocolMetrics metrics;
};

/// \brief A (simulated) distributed LDP heavy-hitters protocol.
///
/// `Run` executes the whole protocol over the distributed database: per-user
/// encoding with per-user private coins, server aggregation, and decoding.
class HeavyHitterProtocol {
 public:
  virtual ~HeavyHitterProtocol() = default;

  /// Executes the protocol; \p seed derives public and private randomness.
  virtual StatusOr<HeavyHitterResult> Run(const std::vector<DomainItem>& database,
                                          uint64_t seed) = 0;

  /// Protocol name for reports.
  virtual std::string Name() const = 0;
  /// The end-to-end privacy parameter.
  virtual double Epsilon() const = 0;
};

/// Evaluation of a result against the true frequencies (Definition 3.1).
struct HeavyHitterEval {
  double max_estimate_error = 0.0;   ///< max over entries |estimate - f_S|.
  uint64_t max_missed_frequency = 0; ///< largest f_S(x) for x not in the list.
  size_t list_size = 0;
  size_t true_hitters_found = 0;     ///< Elements above the threshold found.
  size_t true_hitters_total = 0;
};

/// \brief Scores \p result against \p database.
///
/// \param threshold  elements with frequency >= threshold count as the
///                   "must find" set for the recall statistics.
HeavyHitterEval EvaluateHeavyHitters(const std::vector<DomainItem>& database,
                                     const HeavyHitterResult& result,
                                     uint64_t threshold);

/// Exact frequency map of the database (test/eval helper).
std::vector<std::pair<DomainItem, uint64_t>> ExactFrequencies(
    const std::vector<DomainItem>& database);

}  // namespace ldphh

#endif  // LDPHH_PROTOCOLS_HEAVY_HITTERS_H_
