/// \file protocol_config.h
/// \brief Self-describing protocol configuration: a protocol name plus typed
/// parameters, with a canonical text/binary serialization.
///
/// The serving stack (ShardedAggregator, EpochManager, ReplicaView) used to
/// be wired to one oracle type through an opaque factory closure, so nothing
/// on disk said *what* was being aggregated. A `ProtocolConfig` is the
/// closure made explicit and durable: `ProtocolRegistry::Create(config)`
/// builds an identically configured `Aggregator` anywhere — another process,
/// another machine, a replica, a restart — and every checkpoint header and
/// epoch record embeds the serialized config so restores are self-describing
/// and a mismatch fails with a clean `Status` instead of silently merging
/// incompatible state.
///
/// Canonical text grammar (docs/protocols.md):
///
///   config := name '(' [param (',' param)*] ')'
///   param  := key '=' value
///   name, key := [a-z0-9_]+
///   value  := [A-Za-z0-9_+.-]+        (integers, decimals, scientifics)
///
/// Keys are unique and serialized in ascending order, and values round-trip
/// as the exact string that was set, so serialize(parse(s)) == s for any
/// canonical s — the property the config-equality checks lean on. The binary
/// form is the length-prefixed canonical text (varint length), embeddable in
/// any record.

#ifndef LDPHH_PROTOCOLS_PROTOCOL_CONFIG_H_
#define LDPHH_PROTOCOLS_PROTOCOL_CONFIG_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace ldphh {

class ByteReader;

/// \brief A named protocol plus its parameter map (see file comment).
class ProtocolConfig {
 public:
  ProtocolConfig() = default;
  explicit ProtocolConfig(std::string protocol)
      : protocol_(std::move(protocol)) {}

  const std::string& protocol() const { return protocol_; }
  const std::map<std::string, std::string>& params() const { return params_; }
  bool Has(std::string_view key) const {
    return params_.count(std::string(key)) != 0;
  }

  // ------------------------------------------------------------- setters --
  // Setters normalize values into the canonical charset; CHECK-fails on a
  // malformed key or value (a bad literal here is a library bug, not input).
  ProtocolConfig& Set(std::string_view key, std::string_view value);
  ProtocolConfig& SetUint(std::string_view key, uint64_t value);
  ProtocolConfig& SetInt(std::string_view key, int64_t value);
  /// Doubles serialize with enough digits to round-trip bit-exactly.
  ProtocolConfig& SetDouble(std::string_view key, double value);

  // ------------------------------------------------------------- getters --
  // Typed parses with validation; a missing key or an unparseable value is
  // a kInvalidArgument naming the key.
  Status GetUint(std::string_view key, uint64_t* out) const;
  Status GetInt(std::string_view key, int64_t* out) const;
  Status GetDouble(std::string_view key, double* out) const;
  /// Missing-key-tolerant variants used for optional params with defaults.
  uint64_t GetUintOr(std::string_view key, uint64_t fallback) const;
  /// GetUintOr plus range validation: a present value outside
  /// [min_value, max_value] is a kInvalidArgument naming the key — the
  /// factory-side guard that keeps a parseable config (configs arrive from
  /// disk: epoch blobs, checkpoint manifests) from smuggling a magnitude
  /// whose downstream int cast would wrap or whose allocation would be
  /// absurd. The fallback is not range-checked (an auto sentinel like 0
  /// may sit outside the user-facing range).
  Status GetUintIn(std::string_view key, uint64_t fallback, uint64_t min_value,
                   uint64_t max_value, uint64_t* out) const;
  int64_t GetIntOr(std::string_view key, int64_t fallback) const;
  double GetDoubleOr(std::string_view key, double fallback) const;

  /// Rejects (kInvalidArgument, naming the offender) any key outside
  /// \p allowed — so a factory catches typos like "epsilonn=2" instead of
  /// silently applying a default.
  Status ExpectKeys(std::initializer_list<std::string_view> allowed) const;

  // --------------------------------------------------------------- serde --
  /// Canonical text form, e.g. "k_rr(domain=64,eps=1)".
  std::string ToText() const;
  /// Parses and validates the grammar (charset, balanced parens, unique
  /// keys). The result re-serializes to the identical string.
  static StatusOr<ProtocolConfig> FromText(std::string_view text);

  /// Binary form: varint length + canonical text.
  void AppendTo(std::string* out) const;
  static Status ReadFrom(ByteReader& reader, ProtocolConfig* out);

  /// Configs compare by canonical text.
  bool operator==(const ProtocolConfig& other) const;
  bool operator!=(const ProtocolConfig& other) const {
    return !(*this == other);
  }

 private:
  std::string protocol_;
  std::map<std::string, std::string> params_;
};

}  // namespace ldphh

#endif  // LDPHH_PROTOCOLS_PROTOCOL_CONFIG_H_
