/// \file registry.h
/// \brief Process-wide registry mapping protocol names to factories.
///
/// `ProtocolRegistry::Global()` knows every servable protocol: the six
/// frequency oracles (k_rr, rappor_unary, olh, hadamard_response,
/// count_mean_sketch, hashtogram) and the four heavy-hitter protocols
/// (bitstogram, treehist, private_expander_sketch, succinct_hist). The
/// serving stack never names a concrete class: it calls
/// `Create(ProtocolConfig)` and gets a validated `Aggregator`, so adding a
/// protocol is one `Register` call (docs/protocols.md walks through it).
///
/// Every protocol also owns a stable 16-bit wire id, stamped into the
/// report-batch header's flags space (src/server/report_codec.h) so a
/// front-end can reject a batch encoded for the wrong protocol at decode
/// time, before any report reaches an aggregator.

#ifndef LDPHH_PROTOCOLS_REGISTRY_H_
#define LDPHH_PROTOCOLS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/protocols/aggregator.h"
#include "src/protocols/protocol_config.h"

namespace ldphh {

/// Stable wire ids of the built-in protocols (never renumber — they are
/// persisted in batch headers). 0 means "unstamped" and is accepted by any
/// server for backward compatibility.
enum class ProtocolWireId : uint16_t {
  kUnstamped = 0,
  kKRr = 1,
  kRapporUnary = 2,
  kOlh = 3,
  kHadamardResponse = 4,
  kCountMeanSketch = 5,
  kHashtogram = 6,
  kBitstogram = 7,
  kTreeHist = 8,
  kPrivateExpanderSketch = 9,
  kSuccinctHist = 10,
};

/// \brief Name -> factory (+ wire id) map; see file comment.
class ProtocolRegistry {
 public:
  /// Builds a validated aggregator from \p config; the factory resolves
  /// every auto parameter, so the result's config() is fully pinned.
  using Factory =
      std::function<StatusOr<std::unique_ptr<Aggregator>>(const ProtocolConfig&)>;

  /// The process-wide registry, with every built-in protocol registered.
  static ProtocolRegistry& Global();

  /// Registers \p name; fails on a duplicate name or wire id.
  Status Register(const std::string& name, uint16_t wire_id, Factory factory);

  /// Unknown names fail with kInvalidArgument listing the known protocols.
  StatusOr<std::unique_ptr<Aggregator>> Create(
      const ProtocolConfig& config) const;

  /// Wire id for \p name (kInvalidArgument when unknown).
  StatusOr<uint16_t> WireIdOf(const std::string& name) const;

  /// Registered protocol names, ascending.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    uint16_t wire_id = 0;
    Factory factory;
  };
  /// Guards entries_: Register may run concurrently with Create/WireIdOf on
  /// the process-wide Global() (factories are invoked outside the lock).
  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
};

/// Convenience: Global().Create(config).
StatusOr<std::unique_ptr<Aggregator>> CreateAggregator(
    const ProtocolConfig& config);

}  // namespace ldphh

#endif  // LDPHH_PROTOCOLS_REGISTRY_H_
