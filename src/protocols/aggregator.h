/// \file aggregator.h
/// \brief The protocol-agnostic serving interface: every frequency oracle
/// and every heavy-hitter protocol, behind one streaming API.
///
/// The paper's point is structural — frequency oracles and the heavy-hitter
/// reductions built on them are interchangeable components. `Aggregator` is
/// that interchangeability made operational: a protocol is (1) a client-side
/// `Encode` that privatizes one user's value into a single `WireReport`,
/// (2) a server-side `Aggregate` that absorbs reports in any order, with
/// mergeable, serializable state, and (3) an `EstimateTopK` decode. The
/// sharded ingestion service, the epoch layer, the checkpoint/restore path,
/// and the read replicas all speak this interface and nothing else, so
/// Bitstogram serves exactly like k-RR.
///
/// Exactness contract (inherited from the PR 1 mergeable-state layer): for
/// a fixed `ProtocolConfig`, splitting any report multiset across instances,
/// merging their states (or serializing + restoring them along the way),
/// and decoding must produce bit-for-bit the estimates of one instance that
/// aggregated every report itself. Every built-in protocol satisfies this
/// because all aggregation state is integer-valued tallies (or report
/// lists), so addition order cannot perturb a double.
///
/// Instances are built from a `ProtocolConfig` by the `ProtocolRegistry`
/// (src/protocols/registry.h); `config()` returns the fully resolved config
/// (seed, n_hint, every auto-derived parameter pinned), so
/// `Registry::Create(a.config())` reconstructs an identical instance — the
/// property that makes checkpoints and epoch records self-describing.

#ifndef LDPHH_PROTOCOLS_AGGREGATOR_H_
#define LDPHH_PROTOCOLS_AGGREGATOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bit_util.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/freq/freq_oracle.h"
#include "src/protocols/heavy_hitters.h"
#include "src/protocols/protocol_config.h"

namespace ldphh {

/// \brief One servable LDP protocol instance (see file comment).
class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// The fully resolved, self-describing configuration.
  virtual const ProtocolConfig& config() const = 0;

  /// Protocol name (the registry key).
  const std::string& Name() const { return config().protocol(); }

  /// The end-to-end per-user privacy parameter.
  virtual double Epsilon() const = 0;

  /// Client: privatizes \p value for user \p user_index into one wire
  /// report (composite protocols pack their sub-reports into the 64-bit
  /// payload; widths are fixed by the config). Fails on a value outside
  /// the protocol's domain.
  virtual StatusOr<WireReport> Encode(uint64_t user_index,
                                      const DomainItem& value,
                                      Rng& rng) const = 0;

  /// Server: absorbs one report. Reports may arrive in any order and on
  /// any instance of the same config. A structurally invalid report (wrong
  /// width for this config) fails without mutating state.
  virtual Status Aggregate(const WireReport& report) = 0;

  /// Folds \p other's aggregation state into this instance. Both must be
  /// un-finalized with equal configs; \p other is left unspecified.
  virtual Status Merge(Aggregator& other) = 0;

  /// Appends a binary snapshot of the aggregation state to \p out. The
  /// snapshot is config-relative: restore it only into an instance built
  /// from an equal config (the serving layers enforce this by embedding
  /// the config next to every persisted snapshot).
  virtual Status SerializeState(std::string* out) const = 0;

  /// Replaces the aggregation state with a SerializeState snapshot taken
  /// under an equal config.
  virtual Status RestoreState(std::string_view in) = 0;

  /// Decode: finalizes on first call, then returns up to \p k entries by
  /// estimate, descending (ties: ascending item — a total order, so two
  /// instances with equal state return byte-identical lists). Frequency
  /// oracles scan their domain; heavy-hitter protocols run their candidate
  /// recovery. Aggregate/Merge/SerializeState/RestoreState fail afterwards.
  virtual StatusOr<std::vector<HeavyHitterEntry>> EstimateTopK(size_t k) = 0;

  /// Reports aggregated into this instance so far (merged counts add).
  virtual uint64_t ReportCount() const = 0;
};

/// The EstimateTopK ordering: estimate descending, item ascending.
inline bool HeavyHitterEntryOrder(const HeavyHitterEntry& a,
                                  const HeavyHitterEntry& b) {
  if (a.estimate != b.estimate) return a.estimate > b.estimate;
  return a.item < b.item;
}

/// \brief Convenience base carrying the resolved config, epsilon, report
/// count, and the finalized flag every implementation needs.
class ConfiguredAggregator : public Aggregator {
 public:
  const ProtocolConfig& config() const override { return config_; }
  double Epsilon() const override { return epsilon_; }
  uint64_t ReportCount() const override { return count_; }

 protected:
  ConfiguredAggregator(ProtocolConfig config, double epsilon)
      : config_(std::move(config)), epsilon_(epsilon) {}

  /// Shared Merge preamble: equal configs, both sides un-finalized.
  Status CheckMergeCompatible(const Aggregator& other) const {
    if (other.config() != config_) {
      return Status::InvalidArgument(
          Name() + ": Merge config mismatch (this is " + config_.ToText() +
          ", other is " + other.config().ToText() + ")");
    }
    if (finalized_) {
      return Status::FailedPrecondition(Name() + ": Merge after EstimateTopK");
    }
    return Status::OK();
  }

  Status CheckMutable(const char* op) const {
    if (finalized_) {
      return Status::FailedPrecondition(Name() + ": " + op +
                                        " after EstimateTopK");
    }
    return Status::OK();
  }

  ProtocolConfig config_;
  double epsilon_;
  uint64_t count_ = 0;
  bool finalized_ = false;
};

}  // namespace ldphh

#endif  // LDPHH_PROTOCOLS_AGGREGATOR_H_
