#include "src/protocols/treehist.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_set>

#include "src/common/math_util.h"
#include "src/common/timer.h"

namespace ldphh {

namespace {

// The l-bit prefix of x (low-order bits), as a fresh domain item. Distinct
// levels use distinct oracle instances, so identical masked values at
// different levels never mix.
DomainItem Prefix(const DomainItem& x, int l) {
  DomainItem p = x;
  p.Truncate(l);
  return p;
}

}  // namespace

StatusOr<TreeHist> TreeHist::Create(const TreeHistParams& params) {
  if (params.domain_bits < 8 || params.domain_bits > 256) {
    return Status::InvalidArgument("TreeHist: domain_bits must be in [8, 256]");
  }
  if (params.epsilon <= 0.0) {
    return Status::InvalidArgument("TreeHist: epsilon must be positive");
  }
  if (params.beta <= 0.0 || params.beta >= 1.0) {
    return Status::InvalidArgument("TreeHist: beta must be in (0, 1)");
  }
  if (params.frontier_cap < 2) {
    return Status::InvalidArgument("TreeHist: frontier_cap must be >= 2");
  }
  if (params.num_shards < 1 || params.num_shards > 256) {
    return Status::InvalidArgument("TreeHist: num_shards must be in [1, 256]");
  }
  return TreeHist(params);
}

double TreeHist::DetectionThreshold(uint64_t n) const {
  const double e = std::exp(params_.epsilon / 2.0);
  const double c = (e + 1.0) / (e - 1.0);
  HashtogramParams probe = params_.level_fo;
  if (probe.beta <= 0.0) probe.beta = params_.beta;
  Hashtogram rows_probe(std::max<uint64_t>(n / params_.domain_bits, 16),
                        params_.epsilon / 2.0, probe, 1);
  return params_.threshold_sigmas * c *
         std::sqrt(static_cast<double>(n) *
                   static_cast<double>(params_.domain_bits) *
                   static_cast<double>(rows_probe.rows()));
}

StatusOr<HeavyHitterResult> TreeHist::Run(const std::vector<DomainItem>& database,
                                          uint64_t seed) {
  const uint64_t n = database.size();
  const int d_bits = params_.domain_bits;
  if (n < static_cast<uint64_t>(4 * d_bits)) {
    return Status::InvalidArgument("TreeHist: need at least 4 log|X| users");
  }
  const double eps_half = params_.epsilon / 2.0;

  Rng master(seed);
  const uint64_t level_assign_seed = master();
  Rng user_coins(master());

  // One Hashtogram per tree level (levels are 1-based prefixes), eps/2,
  // plus the global oracle, eps/2. Seeds are drawn up front so sharded
  // aggregation can construct identical oracle replicas per worker.
  HashtogramParams lp = params_.level_fo;
  if (lp.beta <= 0.0) lp.beta = params_.beta;
  const uint64_t level_n_hint = std::max<uint64_t>(n / d_bits, 16);
  std::vector<uint64_t> level_seeds(static_cast<size_t>(d_bits));
  for (auto& s : level_seeds) s = master();
  HashtogramParams gp = params_.global_fo;
  if (gp.beta <= 0.0) gp.beta = params_.beta;
  const uint64_t global_seed = master();

  auto make_level_fos = [&] {
    std::vector<Hashtogram> fos;
    fos.reserve(static_cast<size_t>(d_bits));
    for (int l = 0; l < d_bits; ++l) {
      fos.emplace_back(level_n_hint, eps_half, lp,
                       level_seeds[static_cast<size_t>(l)]);
    }
    return fos;
  };
  std::vector<Hashtogram> level_fo = make_level_fos();
  Hashtogram global_fo(n, eps_half, gp, global_seed);

  HeavyHitterResult result;
  result.metrics.num_users = n;

  // Per-level user indices: each level's oracle sees its own dense index
  // stream so its row balancing is unaffected by the level split.
  std::vector<uint64_t> level_next(static_cast<size_t>(d_bits), 0);
  struct UserReport {
    int level;
    uint64_t level_index;
    FoReport level_report;
    FoReport global_report;
  };
  std::vector<UserReport> reports(static_cast<size_t>(n));

  Timer user_timer;
  for (uint64_t i = 0; i < n; ++i) {
    const DomainItem& x = database[i];
    const int level = static_cast<int>(Mix64(level_assign_seed ^ i) %
                                       static_cast<uint64_t>(d_bits));
    UserReport& r = reports[static_cast<size_t>(i)];
    r.level = level;
    r.level_index = level_next[static_cast<size_t>(level)]++;
    r.level_report = level_fo[static_cast<size_t>(level)].Encode(
        r.level_index, Prefix(x, level + 1), user_coins);
    r.global_report = global_fo.Encode(i, x, user_coins);
  }
  result.metrics.user_seconds_total = user_timer.Seconds();
  for (const auto& r : reports) {
    const uint64_t bits =
        static_cast<uint64_t>(r.level_report.num_bits + r.global_report.num_bits);
    result.metrics.comm_bits_total += bits;
    result.metrics.comm_bits_max_user =
        std::max(result.metrics.comm_bits_max_user, bits);
  }

  Timer server_timer;
  const int num_shards = params_.num_shards;
  if (num_shards <= 1) {
    for (uint64_t i = 0; i < n; ++i) {
      const auto& r = reports[static_cast<size_t>(i)];
      level_fo[static_cast<size_t>(r.level)].Aggregate(r.level_index,
                                                       r.level_report);
      global_fo.Aggregate(i, r.global_report);
    }
  } else {
    // Sharded server: each worker aggregates a strided slice of the report
    // stream into its own oracle replicas (identical seeds), merged at the
    // end. All tallies are integer-valued doubles, so the merged state is
    // bit-for-bit the single-threaded state.
    struct Replica {
      std::vector<Hashtogram> level;
      Hashtogram global;
    };
    std::vector<Replica> replicas;
    replicas.reserve(static_cast<size_t>(num_shards - 1));
    for (int s = 1; s < num_shards; ++s) {
      replicas.push_back(Replica{make_level_fos(),
                                 Hashtogram(n, eps_half, gp, global_seed)});
    }
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      workers.emplace_back([&, s] {
        auto& lf = (s == 0) ? level_fo : replicas[static_cast<size_t>(s - 1)].level;
        auto& gf = (s == 0) ? global_fo : replicas[static_cast<size_t>(s - 1)].global;
        for (uint64_t i = static_cast<uint64_t>(s); i < n;
             i += static_cast<uint64_t>(num_shards)) {
          const auto& r = reports[static_cast<size_t>(i)];
          lf[static_cast<size_t>(r.level)].Aggregate(r.level_index,
                                                     r.level_report);
          gf.Aggregate(i, r.global_report);
        }
      });
    }
    for (auto& w : workers) w.join();
    for (auto& rep : replicas) {
      for (int l = 0; l < d_bits; ++l) {
        LDPHH_RETURN_IF_ERROR(level_fo[static_cast<size_t>(l)].Merge(
            rep.level[static_cast<size_t>(l)]));
      }
      LDPHH_RETURN_IF_ERROR(global_fo.Merge(rep.global));
    }
  }
  for (auto& fo : level_fo) fo.Finalize();
  global_fo.Finalize();

  // Breadth-first frontier growth. A level-l oracle saw ~n/D users, so its
  // estimate of a heavy prefix is ~f/D; the survival threshold is set from
  // the oracle's own noise scale c sqrt(n_l R).
  const double e = std::exp(eps_half);
  const double c_eps = (e + 1.0) / (e - 1.0);
  const std::vector<DomainItem> frontier = TreeHistGrowFrontier(
      level_fo, level_next, d_bits, c_eps, params_.threshold_sigmas,
      params_.frontier_cap);

  result.entries.reserve(frontier.size());
  for (const DomainItem& cand : frontier) {
    result.entries.push_back(
        HeavyHitterEntry{cand, global_fo.Estimate(cand)});
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const HeavyHitterEntry& a, const HeavyHitterEntry& b) {
              return a.estimate > b.estimate;
            });
  result.metrics.server_seconds = server_timer.Seconds();

  size_t mem = global_fo.MemoryBytes();
  for (const auto& fo : level_fo) mem += fo.MemoryBytes();
  result.metrics.server_memory_bytes = mem;
  result.metrics.public_random_bits_per_user =
      (static_cast<uint64_t>(6 * level_fo[0].rows()) + 6 * global_fo.rows() + 2) *
      61;
  return result;
}

std::vector<DomainItem> TreeHistGrowFrontier(
    const std::vector<Hashtogram>& level_fo,
    const std::vector<uint64_t>& level_counts, int domain_bits, double c_eps,
    double threshold_sigmas, int frontier_cap) {
  struct Scored {
    DomainItem prefix;
    double score;
  };
  std::vector<Scored> frontier = {{DomainItem(), 0.0}};
  for (int l = 0; l < domain_bits; ++l) {
    const auto& fo = level_fo[static_cast<size_t>(l)];
    const double n_l = static_cast<double>(level_counts[static_cast<size_t>(l)]);
    const double tau = threshold_sigmas * c_eps *
                       std::sqrt(std::max(1.0, n_l) *
                                 static_cast<double>(fo.rows()));
    std::vector<Scored> next;
    next.reserve(frontier.size() * 2);
    for (const auto& cand : frontier) {
      for (int bit = 0; bit < 2; ++bit) {
        DomainItem child = cand.prefix;
        child.SetBit(l, bit);
        const double est = fo.Estimate(child);
        if (est >= tau) next.push_back({child, est});
      }
    }
    if (static_cast<int>(next.size()) > frontier_cap) {
      std::partial_sort(next.begin(), next.begin() + frontier_cap, next.end(),
                        [](const Scored& a, const Scored& b) {
                          return a.score > b.score;
                        });
      next.resize(static_cast<size_t>(frontier_cap));
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  std::vector<DomainItem> leaves;
  leaves.reserve(frontier.size());
  for (const auto& cand : frontier) leaves.push_back(cand.prefix);
  return leaves;
}

}  // namespace ldphh
