/// \file private_expander_sketch.h
/// \brief Algorithm PrivateExpanderSketch (Section 3.3) — the paper's main
/// contribution: an eps-LDP heavy-hitters protocol with worst-case error
/// O((1/eps) sqrt(n log(|X|/beta))), optimal in all parameters.
///
/// Pipeline (each user sends one combined message, eps/2 + eps/2):
///   1. Public randomness assigns user i to a coordinate group m in [M] and
///      a payload position j (DESIGN.md substitution 5: the argmax over the
///      exponential payload alphabet [Z] is realized bitwise), and publishes
///      the Theorem 3.6 code (expander + hashes h_1..h_M) and the bucket
///      hash g : X -> [B].
///   2. User i computes Enc(x_i) = (h_m(x_i), E~nc(x_i)_m), extracts payload
///      bit j, and reports the cell (g(x_i), h_m(x_i), bit) through the
///      small-domain Hashtogram (Theorem 3.8) of its (m, j) group — plus a
///      global Hashtogram (Theorem 3.7) report for step 5.
///   3. The server scans all (m, b, y) cells, keeps hash values whose
///      estimated support count stands out (step 3b threshold), recovers
///      payloads by per-position majority, and caps each list at ell.
///   4. Per bucket b, the Theorem 3.6 decoder (layered graph -> spectral
///      clusters -> RS errors-and-erasures) returns the candidate set H^b.
///   5. The global Hashtogram estimates f_S(x) for every candidate;
///      the output is Est = {(x, f^(x))}.

#ifndef LDPHH_PROTOCOLS_PRIVATE_EXPANDER_SKETCH_H_
#define LDPHH_PROTOCOLS_PRIVATE_EXPANDER_SKETCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/codes/url_code.h"
#include "src/freq/hadamard_response.h"
#include "src/freq/hashtogram.h"
#include "src/hashing/kwise_hash.h"
#include "src/protocols/heavy_hitters.h"

namespace ldphh {

/// Tuning parameters for PrivateExpanderSketch.
struct PesParams {
  int domain_bits = 64;      ///< log2 |X|.
  double epsilon = 2.0;      ///< Total privacy budget (split eps/2 + eps/2).
  double beta = 1e-3;        ///< Failure probability target.

  int num_coords = 0;        ///< M; 0 = auto from domain_bits.
  int hash_range = 32;       ///< Y (power of two).
  int expander_degree = 4;   ///< d (even).
  int num_buckets = 0;       ///< B; 0 = auto ~ eps sqrt(n)/log^{3/2}|X|.
  double bucket_mult = 1.0;  ///< Scales the auto B.

  double threshold_sigmas = 4.0;  ///< Step 3b: tau = this * sd(count noise).
  int list_cap = 0;          ///< ell; 0 = auto 4 ceil(log2 |X|).
  double alpha = 0.25;       ///< Code's tolerated bad-coordinate fraction.

  /// Server aggregation shards (>= 1). With S > 1 the server aggregates
  /// reports on S threads over per-shard oracle replicas and merges them;
  /// the result is bit-for-bit identical to the single-threaded run (the
  /// same contract as bitstogram/treehist).
  int num_shards = 1;

  HashtogramParams global_fo;  ///< Step 5 oracle tuning (beta auto-filled).
};

/// \brief The Section 3.3 protocol.
class PrivateExpanderSketch final : public HeavyHitterProtocol {
 public:
  /// Validates parameters and resolves the auto fields that do not depend
  /// on n (M, list cap).
  static StatusOr<PrivateExpanderSketch> Create(const PesParams& params);

  StatusOr<HeavyHitterResult> Run(const std::vector<DomainItem>& database,
                                  uint64_t seed) override;
  std::string Name() const override { return "private-expander-sketch"; }
  double Epsilon() const override { return params_.epsilon; }

  /// \brief The smallest frequency the protocol reliably detects at n users
  /// (the Theorem 3.13 item-2 guarantee, with this implementation's
  /// constants): ~4.5 c_{eps/2} sqrt(n M Lz), where Lz is the payload width.
  ///
  /// The paper's asymptotic form is O((1/eps) sqrt(n log(|X|/beta)));
  /// M * Lz = O(log |X|) realizes the log |X| factor.
  double DetectionThreshold(uint64_t n) const;

  /// Resolved M.
  int num_coords() const { return params_.num_coords; }
  /// Payload bits per coordinate (Lz).
  int payload_bits() const { return payload_bits_; }
  const PesParams& params() const { return params_; }

 private:
  explicit PrivateExpanderSketch(const PesParams& params, UrlCodeParams code_params,
                                 int payload_bits);

  int ResolveBuckets(uint64_t n) const;

  PesParams params_;
  UrlCodeParams code_params_;
  int payload_bits_;
};

/// Steps 3-4 of the server decode (candidate-list reconstruction + the
/// Theorem 3.6 per-bucket decoder + bucket-hash verification), shared by
/// Run and the streaming serving aggregator (src/protocols/hh_serving.h).
/// \p cell_fo must be finalized, laid out [m * payload_bits + j] over the
/// cell domain [num_buckets] x [hash_range] x {0,1}. Returns verified
/// candidates in recovery order, deduplicated.
std::vector<DomainItem> PesRecoverCandidates(
    const std::vector<HadamardResponseFO>& cell_fo, const UrlCode& code,
    const KWiseHash& bucket_hash, int num_coords, int num_buckets,
    int hash_range, int payload_bits, int list_cap, double tau,
    Rng& decode_rng);

}  // namespace ldphh

#endif  // LDPHH_PROTOCOLS_PRIVATE_EXPANDER_SKETCH_H_
