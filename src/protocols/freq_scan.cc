#include "src/protocols/freq_scan.h"

#include <algorithm>
#include <cmath>

#include "src/common/timer.h"
#include "src/freq/hadamard_response.h"

namespace ldphh {

StatusOr<FreqScan> FreqScan::Create(const FreqScanParams& params) {
  if (params.domain_bits < 4 || params.domain_bits > 24) {
    return Status::InvalidArgument("FreqScan: domain_bits must be in [4, 24]");
  }
  if (params.epsilon <= 0.0) {
    return Status::InvalidArgument("FreqScan: epsilon must be positive");
  }
  return FreqScan(params);
}

double FreqScan::DetectionThreshold(uint64_t n) const {
  const double e = std::exp(params_.epsilon);
  const double c = (e + 1.0) / (e - 1.0);
  return params_.threshold_sigmas * c *
         std::sqrt(static_cast<double>(n) *
                   (static_cast<double>(params_.domain_bits) * std::log(2.0) +
                    std::log(1.0 / params_.beta)));
}

StatusOr<HeavyHitterResult> FreqScan::Run(const std::vector<DomainItem>& database,
                                          uint64_t seed) {
  const uint64_t n = database.size();
  if (n < 16) return Status::InvalidArgument("FreqScan: need >= 16 users");
  const uint64_t domain = uint64_t{1} << params_.domain_bits;

  Rng master(seed);
  Rng user_coins(master());
  HadamardResponseFO fo(domain, params_.epsilon);

  HeavyHitterResult result;
  result.metrics.num_users = n;

  std::vector<FoReport> reports(static_cast<size_t>(n));
  Timer user_timer;
  for (uint64_t i = 0; i < n; ++i) {
    reports[static_cast<size_t>(i)] =
        fo.Encode(database[i].limbs[0] & (domain - 1), user_coins);
  }
  result.metrics.user_seconds_total = user_timer.Seconds();
  for (const auto& r : reports) {
    result.metrics.comm_bits_total += static_cast<uint64_t>(r.num_bits);
    result.metrics.comm_bits_max_user =
        std::max(result.metrics.comm_bits_max_user,
                 static_cast<uint64_t>(r.num_bits));
  }

  Timer server_timer;
  for (const auto& r : reports) fo.Aggregate(r);
  fo.Finalize();

  const double tau = DetectionThreshold(n);
  struct Scored {
    uint64_t value;
    double estimate;
  };
  std::vector<Scored> hits;
  for (uint64_t v = 0; v < domain; ++v) {
    const double est = fo.Estimate(v);
    if (est >= tau) hits.push_back(Scored{v, est});
  }
  if (static_cast<int>(hits.size()) > params_.list_cap) {
    std::partial_sort(hits.begin(), hits.begin() + params_.list_cap, hits.end(),
                      [](const Scored& a, const Scored& b) {
                        return a.estimate > b.estimate;
                      });
    hits.resize(static_cast<size_t>(params_.list_cap));
  }
  for (const Scored& s : hits) {
    result.entries.push_back(HeavyHitterEntry{DomainItem(s.value), s.estimate});
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const HeavyHitterEntry& a, const HeavyHitterEntry& b) {
              return a.estimate > b.estimate;
            });
  result.metrics.server_seconds = server_timer.Seconds();
  result.metrics.server_memory_bytes = fo.MemoryBytes();
  result.metrics.public_random_bits_per_user = 64;
  return result;
}

}  // namespace ldphh
