#include "src/protocols/hh_serving.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/math_util.h"
#include "src/common/serde.h"
#include "src/freq/hadamard_response.h"
#include "src/freq/hashtogram.h"
#include "src/hashing/kwise_hash.h"
#include "src/protocols/bitstogram.h"
#include "src/protocols/private_expander_sketch.h"
#include "src/protocols/serving_util.h"
#include "src/protocols/succinct_hist.h"
#include "src/protocols/treehist.h"

namespace ldphh {

namespace {

using serving::CheckItemWidth;
using serving::CheckReportShape;
using serving::SortTopK;

// --------------------------------------------------------- shared helpers --

/// (e^{eps} + 1) / (e^{eps} - 1): the randomized-response debias constant.
double CEps(double eps) {
  const double e = std::exp(eps);
  return (e + 1.0) / (e - 1.0);
}

/// Packs two sub-reports little-endian: \p lo in the low lo_bits, \p hi
/// above it. The factories validated lo_bits + hi_bits <= 64 at create time.
FoReport PackPair(const FoReport& lo, int lo_bits, const FoReport& hi,
                  int hi_bits) {
  FoReport out;
  out.bits = lo.bits | (hi.bits << lo_bits);
  out.num_bits = lo_bits + hi_bits;
  return out;
}

void UnpackPair(const FoReport& packed, int lo_bits, int hi_bits,
                FoReport* lo, FoReport* hi) {
  lo->bits = lo_bits < 64 ? (packed.bits & ((uint64_t{1} << lo_bits) - 1))
                          : packed.bits;
  lo->num_bits = lo_bits;
  hi->bits = packed.bits >> lo_bits;
  hi->num_bits = hi_bits;
}

/// Serializes a component oracle state, length-prefixed.
template <typename Oracle>
Status AppendComponentState(const Oracle& oracle, std::string* out) {
  std::string state;
  LDPHH_RETURN_IF_ERROR(oracle.SerializeState(&state));
  PutLengthPrefixed(out, state);
  return Status::OK();
}

template <typename Oracle>
Status RestoreComponentState(ByteReader& reader, Oracle* oracle) {
  std::string_view state;
  LDPHH_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&state));
  return oracle->RestoreState(state);
}

/// Shared parse of the heavy-hitter config keys present in every grammar.
struct HhCommon {
  int domain_bits = 0;
  double eps = 0.0;
  double beta = 0.0;
  uint64_t n_hint = 0;
  uint64_t seed = 0;
};

StatusOr<HhCommon> ParseHhCommon(const ProtocolConfig& config, int min_bits,
                                 int max_bits) {
  HhCommon c;
  uint64_t domain_bits = 0;
  LDPHH_RETURN_IF_ERROR(config.GetUint("domain_bits", &domain_bits));
  LDPHH_RETURN_IF_ERROR(config.GetDouble("eps", &c.eps));
  if (domain_bits < static_cast<uint64_t>(min_bits) ||
      domain_bits > static_cast<uint64_t>(max_bits)) {
    return Status::InvalidArgument(
        config.protocol() + ": domain_bits must be in [" +
        std::to_string(min_bits) + ", " + std::to_string(max_bits) + "]");
  }
  // The 64 cap keeps every exp(eps)-derived constant finite (and any
  // larger eps is not meaningfully private anyway).
  if (!(c.eps > 0.0) || !(c.eps <= 64.0)) {
    return Status::InvalidArgument(config.protocol() +
                                   ": eps must be in (0, 64]");
  }
  c.domain_bits = static_cast<int>(domain_bits);
  c.beta = config.GetDoubleOr("beta", 1e-3);
  if (!(c.beta > 0.0 && c.beta < 1.0)) {
    return Status::InvalidArgument(config.protocol() +
                                   ": beta must be in (0, 1)");
  }
  LDPHH_RETURN_IF_ERROR(config.GetUintIn("n_hint", uint64_t{1} << 16, 16,
                                         uint64_t{1} << 40, &c.n_hint));
  c.seed = config.GetUintOr("seed", 1);
  return c;
}

/// threshold_sigmas (and friends) must be finite and non-negative: NaN
/// would poison every tau comparison into "keep nothing" silently.
Status CheckSigmas(double sigmas, const std::string& name) {
  if (!std::isfinite(sigmas) || sigmas < 0.0) {
    return Status::InvalidArgument(
        name + ": threshold_sigmas must be finite and >= 0");
  }
  return Status::OK();
}

Status CheckPackedWidth(int lo_bits, int hi_bits, const std::string& name) {
  if (lo_bits + hi_bits > 64) {
    return Status::InvalidArgument(
        name + ": packed report needs " + std::to_string(lo_bits + hi_bits) +
        " bits; the wire payload holds 64 (shrink hash_range / fo_table or "
        "n_hint)");
  }
  return Status::OK();
}

/// Echoes the common keys into the resolved config.
void EchoCommon(const HhCommon& c, ProtocolConfig* resolved) {
  resolved->SetUint("domain_bits", static_cast<uint64_t>(c.domain_bits))
      .SetDouble("eps", c.eps)
      .SetDouble("beta", c.beta)
      .SetUint("n_hint", c.n_hint)
      .SetUint("seed", c.seed);
}

/// Builds the global-estimation Hashtogram from the shared fo_rows/fo_table
/// keys and echoes the resolved values into \p resolved.
StatusOr<std::unique_ptr<Hashtogram>> MakeGlobalFo(
    const ProtocolConfig& config, const HhCommon& c, uint64_t global_seed,
    ProtocolConfig* resolved) {
  HashtogramParams params;
  uint64_t fo_rows = 0;
  LDPHH_RETURN_IF_ERROR(config.GetUintIn("fo_rows", 0, 0, 4096, &fo_rows));
  params.rows = static_cast<int>(fo_rows);
  LDPHH_RETURN_IF_ERROR(config.GetUintIn("fo_table", 0, 0, uint64_t{1} << 24,
                                         &params.table_size));
  params.beta = c.beta;
  auto global =
      std::make_unique<Hashtogram>(c.n_hint, c.eps / 2.0, params, global_seed);
  resolved->SetUint("fo_rows", static_cast<uint64_t>(global->rows()))
      .SetUint("fo_table", global->table_size());
  return global;
}

// -------------------------------------------------------------- bitstogram --

class BitstogramAggregator final : public ConfiguredAggregator {
 public:
  struct Init {
    ProtocolConfig config;
    HhCommon common;
    int cohorts = 0;
    int y_range = 0;
    int list_cap = 0;
    double threshold_sigmas = 0.0;
    uint64_t group_seed = 0;
    std::unique_ptr<HashFamily> cohort_hash;
    std::vector<HadamardResponseFO> cell_fo;
    std::unique_ptr<Hashtogram> global;
    int cell_bits = 0;
    int global_bits = 0;
  };

  explicit BitstogramAggregator(Init init)
      : ConfiguredAggregator(std::move(init.config), init.common.eps),
        common_(init.common),
        cohorts_(init.cohorts),
        y_range_(init.y_range),
        list_cap_(init.list_cap),
        threshold_sigmas_(init.threshold_sigmas),
        group_seed_(init.group_seed),
        cohort_hash_(std::move(init.cohort_hash)),
        cell_fo_(std::move(init.cell_fo)),
        global_(std::move(init.global)),
        cell_bits_(init.cell_bits),
        global_bits_(init.global_bits) {}

  StatusOr<WireReport> Encode(uint64_t user_index, const DomainItem& value,
                              Rng& rng) const override {
    LDPHH_RETURN_IF_ERROR(CheckItemWidth(value, common_.domain_bits, Name()));
    const int q = GroupOf(user_index);
    const int c = q / common_.domain_bits;
    const int j = q % common_.domain_bits;
    const uint64_t y = cohort_hash_->at(c)(value);
    const uint64_t cell = y * 2 + static_cast<uint64_t>(value.Bit(j));
    const FoReport cell_rep =
        cell_fo_[static_cast<size_t>(q)].Encode(cell, rng);
    const FoReport glob = global_->Encode(user_index, value, rng);
    WireReport r;
    r.user_index = user_index;
    r.report = PackPair(cell_rep, cell_bits_, glob, global_bits_);
    return r;
  }

  Status Aggregate(const WireReport& report) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("Aggregate"));
    LDPHH_RETURN_IF_ERROR(
        CheckReportShape(report.report, cell_bits_ + global_bits_, Name()));
    FoReport cell_rep, glob;
    UnpackPair(report.report, cell_bits_, global_bits_, &cell_rep, &glob);
    const int q = GroupOf(report.user_index);
    cell_fo_[static_cast<size_t>(q)].Aggregate(cell_rep);
    global_->Aggregate(report.user_index, glob);
    ++count_;
    return Status::OK();
  }

  Status Merge(Aggregator& other) override {
    LDPHH_RETURN_IF_ERROR(CheckMergeCompatible(other));
    auto* peer = dynamic_cast<BitstogramAggregator*>(&other);
    if (peer == nullptr) {
      return Status::InvalidArgument(Name() +
                                     ": Merge with foreign aggregator");
    }
    for (size_t q = 0; q < cell_fo_.size(); ++q) {
      LDPHH_RETURN_IF_ERROR(cell_fo_[q].Merge(peer->cell_fo_[q]));
    }
    LDPHH_RETURN_IF_ERROR(global_->Merge(*peer->global_));
    count_ += peer->count_;
    return Status::OK();
  }

  Status SerializeState(std::string* out) const override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("SerializeState"));
    PutU64(out, count_);
    PutU32(out, static_cast<uint32_t>(cell_fo_.size()));
    for (const auto& fo : cell_fo_) {
      LDPHH_RETURN_IF_ERROR(AppendComponentState(fo, out));
    }
    return AppendComponentState(*global_, out);
  }

  Status RestoreState(std::string_view in) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("RestoreState"));
    ByteReader reader(in);
    uint64_t count = 0;
    uint32_t groups = 0;
    LDPHH_RETURN_IF_ERROR(reader.ReadU64(&count));
    LDPHH_RETURN_IF_ERROR(reader.ReadU32(&groups));
    if (groups != cell_fo_.size()) {
      return Status::DecodeFailure(Name() + ": snapshot group count mismatch");
    }
    for (auto& fo : cell_fo_) {
      LDPHH_RETURN_IF_ERROR(RestoreComponentState(reader, &fo));
    }
    LDPHH_RETURN_IF_ERROR(RestoreComponentState(reader, global_.get()));
    count_ = count;
    return Status::OK();
  }

  StatusOr<std::vector<HeavyHitterEntry>> EstimateTopK(size_t k) override {
    if (!finalized_) {
      for (auto& fo : cell_fo_) fo.Finalize();
      global_->Finalize();
      finalized_ = true;
    }
    const double count_sd =
        CEps(common_.eps / 2.0) *
        std::sqrt(2.0 * static_cast<double>(count_) /
                  static_cast<double>(cohorts_));
    const double tau = threshold_sigmas_ * count_sd;
    const std::vector<DomainItem> recovered = BitstogramRecoverCandidates(
        cell_fo_, *cohort_hash_, cohorts_, common_.domain_bits, y_range_,
        list_cap_, tau);
    std::vector<HeavyHitterEntry> entries;
    entries.reserve(recovered.size());
    for (const DomainItem& x : recovered) {
      entries.push_back(HeavyHitterEntry{x, global_->Estimate(x)});
    }
    return SortTopK(std::move(entries), k);
  }

 private:
  int GroupOf(uint64_t user_index) const {
    return static_cast<int>(Mix64(group_seed_ ^ user_index) %
                            static_cast<uint64_t>(cell_fo_.size()));
  }

  HhCommon common_;
  int cohorts_;
  int y_range_;
  int list_cap_;
  double threshold_sigmas_;
  uint64_t group_seed_;
  std::unique_ptr<HashFamily> cohort_hash_;
  std::vector<HadamardResponseFO> cell_fo_;
  std::unique_ptr<Hashtogram> global_;
  int cell_bits_;
  int global_bits_;
};

// ---------------------------------------------------------------- treehist --

class TreeHistAggregator final : public ConfiguredAggregator {
 public:
  struct Init {
    ProtocolConfig config;
    HhCommon common;
    double threshold_sigmas = 0.0;
    int frontier_cap = 0;
    uint64_t level_assign_seed = 0;
    std::vector<Hashtogram> level_fo;
    std::unique_ptr<Hashtogram> global;
    int level_bits = 0;
    int global_bits = 0;
  };

  explicit TreeHistAggregator(Init init)
      : ConfiguredAggregator(std::move(init.config), init.common.eps),
        common_(init.common),
        threshold_sigmas_(init.threshold_sigmas),
        frontier_cap_(init.frontier_cap),
        level_assign_seed_(init.level_assign_seed),
        level_fo_(std::move(init.level_fo)),
        global_(std::move(init.global)),
        level_bits_(init.level_bits),
        global_bits_(init.global_bits),
        level_counts_(level_fo_.size(), 0) {}

  StatusOr<WireReport> Encode(uint64_t user_index, const DomainItem& value,
                              Rng& rng) const override {
    LDPHH_RETURN_IF_ERROR(CheckItemWidth(value, common_.domain_bits, Name()));
    const int level = LevelOf(user_index);
    DomainItem prefix = value;
    prefix.Truncate(level + 1);
    const FoReport level_rep =
        level_fo_[static_cast<size_t>(level)].Encode(user_index, prefix, rng);
    const FoReport glob = global_->Encode(user_index, value, rng);
    WireReport r;
    r.user_index = user_index;
    r.report = PackPair(level_rep, level_bits_, glob, global_bits_);
    return r;
  }

  Status Aggregate(const WireReport& report) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("Aggregate"));
    LDPHH_RETURN_IF_ERROR(
        CheckReportShape(report.report, level_bits_ + global_bits_, Name()));
    FoReport level_rep, glob;
    UnpackPair(report.report, level_bits_, global_bits_, &level_rep, &glob);
    const int level = LevelOf(report.user_index);
    level_fo_[static_cast<size_t>(level)].Aggregate(report.user_index,
                                                    level_rep);
    global_->Aggregate(report.user_index, glob);
    ++level_counts_[static_cast<size_t>(level)];
    ++count_;
    return Status::OK();
  }

  Status Merge(Aggregator& other) override {
    LDPHH_RETURN_IF_ERROR(CheckMergeCompatible(other));
    auto* peer = dynamic_cast<TreeHistAggregator*>(&other);
    if (peer == nullptr) {
      return Status::InvalidArgument(Name() +
                                     ": Merge with foreign aggregator");
    }
    for (size_t l = 0; l < level_fo_.size(); ++l) {
      LDPHH_RETURN_IF_ERROR(level_fo_[l].Merge(peer->level_fo_[l]));
      level_counts_[l] += peer->level_counts_[l];
    }
    LDPHH_RETURN_IF_ERROR(global_->Merge(*peer->global_));
    count_ += peer->count_;
    return Status::OK();
  }

  Status SerializeState(std::string* out) const override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("SerializeState"));
    PutU64(out, count_);
    PutU32(out, static_cast<uint32_t>(level_fo_.size()));
    for (uint64_t c : level_counts_) PutU64(out, c);
    for (const auto& fo : level_fo_) {
      LDPHH_RETURN_IF_ERROR(AppendComponentState(fo, out));
    }
    return AppendComponentState(*global_, out);
  }

  Status RestoreState(std::string_view in) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("RestoreState"));
    ByteReader reader(in);
    uint64_t count = 0;
    uint32_t levels = 0;
    LDPHH_RETURN_IF_ERROR(reader.ReadU64(&count));
    LDPHH_RETURN_IF_ERROR(reader.ReadU32(&levels));
    if (levels != level_fo_.size()) {
      return Status::DecodeFailure(Name() + ": snapshot level count mismatch");
    }
    std::vector<uint64_t> counts(level_fo_.size(), 0);
    for (auto& c : counts) LDPHH_RETURN_IF_ERROR(reader.ReadU64(&c));
    for (auto& fo : level_fo_) {
      LDPHH_RETURN_IF_ERROR(RestoreComponentState(reader, &fo));
    }
    LDPHH_RETURN_IF_ERROR(RestoreComponentState(reader, global_.get()));
    level_counts_ = std::move(counts);
    count_ = count;
    return Status::OK();
  }

  StatusOr<std::vector<HeavyHitterEntry>> EstimateTopK(size_t k) override {
    if (!finalized_) {
      for (auto& fo : level_fo_) fo.Finalize();
      global_->Finalize();
      finalized_ = true;
    }
    const std::vector<DomainItem> frontier = TreeHistGrowFrontier(
        level_fo_, level_counts_, common_.domain_bits, CEps(common_.eps / 2.0),
        threshold_sigmas_, frontier_cap_);
    std::vector<HeavyHitterEntry> entries;
    entries.reserve(frontier.size());
    for (const DomainItem& x : frontier) {
      entries.push_back(HeavyHitterEntry{x, global_->Estimate(x)});
    }
    return SortTopK(std::move(entries), k);
  }

 private:
  int LevelOf(uint64_t user_index) const {
    return static_cast<int>(Mix64(level_assign_seed_ ^ user_index) %
                            static_cast<uint64_t>(level_fo_.size()));
  }

  HhCommon common_;
  double threshold_sigmas_;
  int frontier_cap_;
  uint64_t level_assign_seed_;
  std::vector<Hashtogram> level_fo_;
  std::unique_ptr<Hashtogram> global_;
  int level_bits_;
  int global_bits_;
  std::vector<uint64_t> level_counts_;
};

// ------------------------------------------------- private_expander_sketch --

class PesAggregator final : public ConfiguredAggregator {
 public:
  struct Init {
    ProtocolConfig config;
    HhCommon common;
    int num_coords = 0;
    int num_buckets = 0;
    int y_range = 0;
    int payload_bits = 0;
    int list_cap = 0;
    double threshold_sigmas = 0.0;
    uint64_t group_seed = 0;
    uint64_t decode_seed = 0;
    std::unique_ptr<UrlCode> code;
    std::unique_ptr<KWiseHash> bucket_hash;
    std::vector<HadamardResponseFO> cell_fo;
    std::unique_ptr<Hashtogram> global;
    int cell_bits = 0;
    int global_bits = 0;
  };

  explicit PesAggregator(Init init)
      : ConfiguredAggregator(std::move(init.config), init.common.eps),
        common_(init.common),
        num_coords_(init.num_coords),
        num_buckets_(init.num_buckets),
        y_range_(init.y_range),
        payload_bits_(init.payload_bits),
        list_cap_(init.list_cap),
        threshold_sigmas_(init.threshold_sigmas),
        group_seed_(init.group_seed),
        decode_seed_(init.decode_seed),
        code_(std::move(init.code)),
        bucket_hash_(std::move(init.bucket_hash)),
        cell_fo_(std::move(init.cell_fo)),
        global_(std::move(init.global)),
        cell_bits_(init.cell_bits),
        global_bits_(init.global_bits) {}

  StatusOr<WireReport> Encode(uint64_t user_index, const DomainItem& value,
                              Rng& rng) const override {
    LDPHH_RETURN_IF_ERROR(CheckItemWidth(value, common_.domain_bits, Name()));
    const int q = GroupOf(user_index);
    const int m = q / payload_bits_;
    const int j = q % payload_bits_;
    const UrlCode::Codeword cw = code_->Encode(value);
    const uint64_t b = (*bucket_hash_)(value);
    const uint64_t y = cw.y[static_cast<size_t>(m)];
    const uint64_t payload =
        code_->PackPayload(cw.symbols[static_cast<size_t>(m)]);
    const uint64_t bit = (payload >> j) & 1;
    const uint64_t cell =
        (b * static_cast<uint64_t>(y_range_) + y) * 2 + bit;
    const FoReport cell_rep =
        cell_fo_[static_cast<size_t>(q)].Encode(cell, rng);
    const FoReport glob = global_->Encode(user_index, value, rng);
    WireReport r;
    r.user_index = user_index;
    r.report = PackPair(cell_rep, cell_bits_, glob, global_bits_);
    return r;
  }

  Status Aggregate(const WireReport& report) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("Aggregate"));
    LDPHH_RETURN_IF_ERROR(
        CheckReportShape(report.report, cell_bits_ + global_bits_, Name()));
    FoReport cell_rep, glob;
    UnpackPair(report.report, cell_bits_, global_bits_, &cell_rep, &glob);
    const int q = GroupOf(report.user_index);
    cell_fo_[static_cast<size_t>(q)].Aggregate(cell_rep);
    global_->Aggregate(report.user_index, glob);
    ++count_;
    return Status::OK();
  }

  Status Merge(Aggregator& other) override {
    LDPHH_RETURN_IF_ERROR(CheckMergeCompatible(other));
    auto* peer = dynamic_cast<PesAggregator*>(&other);
    if (peer == nullptr) {
      return Status::InvalidArgument(Name() +
                                     ": Merge with foreign aggregator");
    }
    for (size_t q = 0; q < cell_fo_.size(); ++q) {
      LDPHH_RETURN_IF_ERROR(cell_fo_[q].Merge(peer->cell_fo_[q]));
    }
    LDPHH_RETURN_IF_ERROR(global_->Merge(*peer->global_));
    count_ += peer->count_;
    return Status::OK();
  }

  Status SerializeState(std::string* out) const override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("SerializeState"));
    PutU64(out, count_);
    PutU32(out, static_cast<uint32_t>(cell_fo_.size()));
    for (const auto& fo : cell_fo_) {
      LDPHH_RETURN_IF_ERROR(AppendComponentState(fo, out));
    }
    return AppendComponentState(*global_, out);
  }

  Status RestoreState(std::string_view in) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("RestoreState"));
    ByteReader reader(in);
    uint64_t count = 0;
    uint32_t groups = 0;
    LDPHH_RETURN_IF_ERROR(reader.ReadU64(&count));
    LDPHH_RETURN_IF_ERROR(reader.ReadU32(&groups));
    if (groups != cell_fo_.size()) {
      return Status::DecodeFailure(Name() + ": snapshot group count mismatch");
    }
    for (auto& fo : cell_fo_) {
      LDPHH_RETURN_IF_ERROR(RestoreComponentState(reader, &fo));
    }
    LDPHH_RETURN_IF_ERROR(RestoreComponentState(reader, global_.get()));
    count_ = count;
    return Status::OK();
  }

  StatusOr<std::vector<HeavyHitterEntry>> EstimateTopK(size_t k) override {
    if (!finalized_) {
      for (auto& fo : cell_fo_) fo.Finalize();
      global_->Finalize();
      finalized_ = true;
    }
    const double count_sd =
        CEps(common_.eps / 2.0) *
        std::sqrt(2.0 * static_cast<double>(count_) /
                  static_cast<double>(num_coords_));
    const double tau = threshold_sigmas_ * count_sd;
    Rng decode_rng(decode_seed_);
    const std::vector<DomainItem> recovered = PesRecoverCandidates(
        cell_fo_, *code_, *bucket_hash_, num_coords_, num_buckets_, y_range_,
        payload_bits_, list_cap_, tau, decode_rng);
    std::vector<HeavyHitterEntry> entries;
    entries.reserve(recovered.size());
    for (const DomainItem& x : recovered) {
      entries.push_back(HeavyHitterEntry{x, global_->Estimate(x)});
    }
    return SortTopK(std::move(entries), k);
  }

 private:
  int GroupOf(uint64_t user_index) const {
    return static_cast<int>(Mix64(group_seed_ ^ user_index) %
                            static_cast<uint64_t>(cell_fo_.size()));
  }

  HhCommon common_;
  int num_coords_;
  int num_buckets_;
  int y_range_;
  int payload_bits_;
  int list_cap_;
  double threshold_sigmas_;
  uint64_t group_seed_;
  uint64_t decode_seed_;
  std::unique_ptr<UrlCode> code_;
  std::unique_ptr<KWiseHash> bucket_hash_;
  std::vector<HadamardResponseFO> cell_fo_;
  std::unique_ptr<Hashtogram> global_;
  int cell_bits_;
  int global_bits_;
};

// ----------------------------------------------------------- succinct_hist --

class SuccinctHistAggregator final : public ConfiguredAggregator {
 public:
  SuccinctHistAggregator(ProtocolConfig config, HhCommon common,
                         double threshold_sigmas, int list_cap,
                         uint64_t sign_seed)
      : ConfiguredAggregator(std::move(config), common.eps),
        common_(common),
        threshold_sigmas_(threshold_sigmas),
        list_cap_(list_cap),
        sign_seed_(sign_seed),
        keep_prob_(std::exp(common.eps) / (std::exp(common.eps) + 1.0)) {}

  StatusOr<WireReport> Encode(uint64_t user_index, const DomainItem& value,
                              Rng& rng) const override {
    LDPHH_RETURN_IF_ERROR(CheckItemWidth(value, common_.domain_bits, Name()));
    int bit = SuccinctHistSign(sign_seed_, user_index, value);
    if (!rng.Bernoulli(keep_prob_)) bit = -bit;
    WireReport r;
    r.user_index = user_index;
    r.report.bits = bit > 0 ? 1 : 0;
    r.report.num_bits = 1;
    return r;
  }

  Status Aggregate(const WireReport& report) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("Aggregate"));
    LDPHH_RETURN_IF_ERROR(CheckReportShape(report.report, 1, Name()));
    reports_.emplace_back(report.user_index,
                          static_cast<int8_t>(report.report.bits ? 1 : -1));
    ++count_;
    return Status::OK();
  }

  Status Merge(Aggregator& other) override {
    LDPHH_RETURN_IF_ERROR(CheckMergeCompatible(other));
    auto* peer = dynamic_cast<SuccinctHistAggregator*>(&other);
    if (peer == nullptr) {
      return Status::InvalidArgument(Name() +
                                     ": Merge with foreign aggregator");
    }
    reports_.insert(reports_.end(), peer->reports_.begin(),
                    peer->reports_.end());
    count_ += peer->count_;
    return Status::OK();
  }

  Status SerializeState(std::string* out) const override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("SerializeState"));
    PutU64(out, count_);
    PutU64(out, reports_.size());
    for (const auto& [user, bit] : reports_) {
      PutVarint64(out, user);
      PutU8(out, bit > 0 ? 1 : 0);
    }
    return Status::OK();
  }

  Status RestoreState(std::string_view in) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("RestoreState"));
    ByteReader reader(in);
    uint64_t count = 0, size = 0;
    LDPHH_RETURN_IF_ERROR(reader.ReadU64(&count));
    LDPHH_RETURN_IF_ERROR(reader.ReadU64(&size));
    if (size > reader.remaining()) {
      return Status::DecodeFailure(Name() + ": snapshot size exceeds payload");
    }
    std::vector<std::pair<uint64_t, int8_t>> reports;
    reports.reserve(size);
    for (uint64_t i = 0; i < size; ++i) {
      uint64_t user = 0;
      uint8_t bit = 0;
      LDPHH_RETURN_IF_ERROR(reader.ReadVarint64(&user));
      LDPHH_RETURN_IF_ERROR(reader.ReadU8(&bit));
      reports.emplace_back(user, static_cast<int8_t>(bit ? 1 : -1));
    }
    if (!reader.empty()) {
      return Status::DecodeFailure(Name() + ": trailing bytes in snapshot");
    }
    reports_ = std::move(reports);
    count_ = count;
    return Status::OK();
  }

  StatusOr<std::vector<HeavyHitterEntry>> EstimateTopK(size_t k) override {
    finalized_ = true;
    const double tau =
        threshold_sigmas_ * CEps(common_.eps) *
        std::sqrt(static_cast<double>(count_) *
                  (static_cast<double>(common_.domain_bits) * std::log(2.0) +
                   std::log(1.0 / common_.beta)));
    std::vector<HeavyHitterEntry> entries =
        SuccinctHistScan(sign_seed_, reports_, common_.domain_bits,
                         common_.eps, tau, list_cap_);
    return SortTopK(std::move(entries), k);
  }

 private:
  HhCommon common_;
  double threshold_sigmas_;
  int list_cap_;
  uint64_t sign_seed_;
  double keep_prob_;
  std::vector<std::pair<uint64_t, int8_t>> reports_;
};

}  // namespace

// -------------------------------------------------------------- factories --

StatusOr<std::unique_ptr<Aggregator>> MakeBitstogramAggregator(
    const ProtocolConfig& config) {
  LDPHH_RETURN_IF_ERROR(config.ExpectKeys(
      {"domain_bits", "eps", "beta", "n_hint", "seed", "hash_range", "cohorts",
       "threshold_sigmas", "list_cap", "fo_rows", "fo_table"}));
  auto common_or = ParseHhCommon(config, 8, 256);
  LDPHH_RETURN_IF_ERROR(common_or.status());
  const HhCommon c = common_or.value();

  uint64_t cohorts_u = 0;
  LDPHH_RETURN_IF_ERROR(config.GetUintIn("cohorts", 0, 0, 64, &cohorts_u));
  int cohorts = static_cast<int>(cohorts_u);
  if (cohorts == 0) {
    cohorts =
        std::max(1, static_cast<int>(std::ceil(std::log2(1.0 / c.beta))));
  }
  if (cohorts < 1 || cohorts > 64) {
    return Status::InvalidArgument("bitstogram: cohorts must be in [1, 64]");
  }
  uint64_t y_range_u = 0;
  LDPHH_RETURN_IF_ERROR(
      config.GetUintIn("hash_range", 0, 0, uint64_t{1} << 20, &y_range_u));
  int y_range = static_cast<int>(y_range_u);
  if (y_range == 0) {
    y_range = static_cast<int>(std::min<uint64_t>(
        uint64_t{1} << 20, NextPow2(static_cast<uint64_t>(
                               2.0 * std::sqrt(static_cast<double>(c.n_hint))))));
  }
  if (y_range < 2 || y_range > (1 << 20)) {
    return Status::InvalidArgument(
        "bitstogram: hash_range must be in [2, 2^20]");
  }
  uint64_t list_cap_u = 0;
  LDPHH_RETURN_IF_ERROR(
      config.GetUintIn("list_cap", 64, 1, uint64_t{1} << 20, &list_cap_u));
  const int list_cap = static_cast<int>(list_cap_u);
  const double sigmas = config.GetDoubleOr("threshold_sigmas", 4.0);
  LDPHH_RETURN_IF_ERROR(CheckSigmas(sigmas, "bitstogram"));

  Rng master(c.seed);
  const uint64_t hash_seed = master();
  const uint64_t group_seed = master();
  const uint64_t global_seed = master();

  BitstogramAggregator::Init init;
  init.common = c;
  init.cohorts = cohorts;
  init.y_range = y_range;
  init.list_cap = list_cap;
  init.threshold_sigmas = sigmas;
  init.group_seed = group_seed;
  init.cohort_hash = std::make_unique<HashFamily>(
      cohorts, /*k=*/2, static_cast<uint64_t>(y_range), hash_seed);

  ProtocolConfig resolved(config.protocol());
  EchoCommon(c, &resolved);
  resolved.SetUint("hash_range", static_cast<uint64_t>(y_range))
      .SetUint("cohorts", static_cast<uint64_t>(cohorts))
      .SetDouble("threshold_sigmas", sigmas)
      .SetUint("list_cap", static_cast<uint64_t>(list_cap));
  auto global_or = MakeGlobalFo(config, c, global_seed, &resolved);
  LDPHH_RETURN_IF_ERROR(global_or.status());
  init.global = std::move(global_or).value();
  init.config = std::move(resolved);

  const int num_groups = cohorts * c.domain_bits;
  init.cell_fo.reserve(static_cast<size_t>(num_groups));
  for (int q = 0; q < num_groups; ++q) {
    init.cell_fo.emplace_back(static_cast<uint64_t>(y_range) * 2, c.eps / 2.0);
  }
  {
    Rng probe(1);
    init.cell_bits = init.cell_fo[0].Encode(0, probe).num_bits;
  }
  init.global_bits = init.global->ReportBits();
  LDPHH_RETURN_IF_ERROR(
      CheckPackedWidth(init.cell_bits, init.global_bits, "bitstogram"));
  return std::unique_ptr<Aggregator>(new BitstogramAggregator(std::move(init)));
}

StatusOr<std::unique_ptr<Aggregator>> MakeTreeHistAggregator(
    const ProtocolConfig& config) {
  LDPHH_RETURN_IF_ERROR(config.ExpectKeys(
      {"domain_bits", "eps", "beta", "n_hint", "seed", "threshold_sigmas",
       "frontier_cap", "level_rows", "level_table", "fo_rows", "fo_table"}));
  auto common_or = ParseHhCommon(config, 8, 256);
  LDPHH_RETURN_IF_ERROR(common_or.status());
  const HhCommon c = common_or.value();
  const double sigmas = config.GetDoubleOr("threshold_sigmas", 3.0);
  LDPHH_RETURN_IF_ERROR(CheckSigmas(sigmas, "treehist"));
  uint64_t frontier_cap_u = 0;
  LDPHH_RETURN_IF_ERROR(config.GetUintIn("frontier_cap", 64, 2,
                                         uint64_t{1} << 20, &frontier_cap_u));
  const int frontier_cap = static_cast<int>(frontier_cap_u);

  Rng master(c.seed);
  const uint64_t level_assign_seed = master();
  std::vector<uint64_t> level_seeds(static_cast<size_t>(c.domain_bits));
  for (auto& s : level_seeds) s = master();
  const uint64_t global_seed = master();

  HashtogramParams lp;
  uint64_t level_rows = 0;
  LDPHH_RETURN_IF_ERROR(config.GetUintIn("level_rows", 0, 0, 4096,
                                         &level_rows));
  lp.rows = static_cast<int>(level_rows);
  LDPHH_RETURN_IF_ERROR(config.GetUintIn("level_table", 0, 0,
                                         uint64_t{1} << 24, &lp.table_size));
  lp.beta = c.beta;
  const uint64_t level_n_hint =
      std::max<uint64_t>(c.n_hint / static_cast<uint64_t>(c.domain_bits), 16);

  TreeHistAggregator::Init init;
  init.common = c;
  init.threshold_sigmas = sigmas;
  init.frontier_cap = frontier_cap;
  init.level_assign_seed = level_assign_seed;
  init.level_fo.reserve(static_cast<size_t>(c.domain_bits));
  for (int l = 0; l < c.domain_bits; ++l) {
    init.level_fo.emplace_back(level_n_hint, c.eps / 2.0, lp,
                               level_seeds[static_cast<size_t>(l)]);
  }
  ProtocolConfig resolved(config.protocol());
  EchoCommon(c, &resolved);
  resolved.SetDouble("threshold_sigmas", sigmas)
      .SetUint("frontier_cap", static_cast<uint64_t>(frontier_cap))
      .SetUint("level_rows", static_cast<uint64_t>(init.level_fo[0].rows()))
      .SetUint("level_table", init.level_fo[0].table_size());
  auto global_or = MakeGlobalFo(config, c, global_seed, &resolved);
  LDPHH_RETURN_IF_ERROR(global_or.status());
  init.global = std::move(global_or).value();
  init.config = std::move(resolved);
  init.level_bits = init.level_fo[0].ReportBits();
  init.global_bits = init.global->ReportBits();
  LDPHH_RETURN_IF_ERROR(
      CheckPackedWidth(init.level_bits, init.global_bits, "treehist"));
  return std::unique_ptr<Aggregator>(new TreeHistAggregator(std::move(init)));
}

StatusOr<std::unique_ptr<Aggregator>> MakePesAggregator(
    const ProtocolConfig& config) {
  LDPHH_RETURN_IF_ERROR(config.ExpectKeys(
      {"domain_bits", "eps", "beta", "n_hint", "seed", "num_coords",
       "hash_range", "expander_degree", "num_buckets", "bucket_mult",
       "threshold_sigmas", "list_cap", "alpha", "fo_rows", "fo_table"}));
  auto common_or = ParseHhCommon(config, 8, 256);
  LDPHH_RETURN_IF_ERROR(common_or.status());
  const HhCommon c = common_or.value();

  uint64_t num_coords_u = 0;
  LDPHH_RETURN_IF_ERROR(config.GetUintIn("num_coords", 0, 0, 4096,
                                         &num_coords_u));
  int num_coords = static_cast<int>(num_coords_u);
  if (num_coords == 0) {
    num_coords = c.domain_bits <= 32 ? 8 : (c.domain_bits <= 96 ? 16 : 32);
  }
  uint64_t y_range_u = 0;
  LDPHH_RETURN_IF_ERROR(
      config.GetUintIn("hash_range", 32, 2, uint64_t{1} << 20, &y_range_u));
  const int y_range = static_cast<int>(y_range_u);
  uint64_t expander_degree_u = 0;
  LDPHH_RETURN_IF_ERROR(
      config.GetUintIn("expander_degree", 4, 1, 64, &expander_degree_u));
  const int expander_degree = static_cast<int>(expander_degree_u);
  const double bucket_mult = config.GetDoubleOr("bucket_mult", 1.0);
  if (!std::isfinite(bucket_mult) || !(bucket_mult > 0.0)) {
    return Status::InvalidArgument(
        "private_expander_sketch: bucket_mult must be positive and finite");
  }
  const double alpha = config.GetDoubleOr("alpha", 0.25);
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument(
        "private_expander_sketch: alpha must be in (0, 1)");
  }
  const double sigmas = config.GetDoubleOr("threshold_sigmas", 4.0);
  LDPHH_RETURN_IF_ERROR(CheckSigmas(sigmas, "private_expander_sketch"));
  uint64_t list_cap_u = 0;
  LDPHH_RETURN_IF_ERROR(
      config.GetUintIn("list_cap", 0, 0, uint64_t{1} << 20, &list_cap_u));
  int list_cap = static_cast<int>(list_cap_u);
  if (list_cap == 0) list_cap = 4 * c.domain_bits;
  uint64_t num_buckets_u = 0;
  LDPHH_RETURN_IF_ERROR(
      config.GetUintIn("num_buckets", 0, 0, uint64_t{1} << 20, &num_buckets_u));
  int num_buckets = static_cast<int>(num_buckets_u);
  if (num_buckets == 0) {
    const double logx = static_cast<double>(c.domain_bits);
    const double b = bucket_mult * c.eps *
                     std::sqrt(static_cast<double>(c.n_hint)) /
                     (10.0 * std::pow(logx, 1.5));
    num_buckets = static_cast<int>(
        std::min(1.0 * (1 << 20), std::max(1.0, std::round(b))));
  }
  // The per-group cell oracle's domain is num_buckets * hash_range * 2;
  // bound it so a large-but-parseable config cannot demand an absurd
  // allocation (the factory contract: reject, never abort).
  if (static_cast<uint64_t>(num_buckets) * static_cast<uint64_t>(y_range) * 2 >
      (uint64_t{1} << 26)) {
    return Status::InvalidArgument(
        "private_expander_sketch: num_buckets * hash_range too large (cell "
        "domain capped at 2^26); shrink num_buckets, bucket_mult, or n_hint");
  }

  Rng master(c.seed);
  const uint64_t code_seed = master();
  const uint64_t bucket_seed = master();
  const uint64_t group_seed = master();
  const uint64_t global_seed = master();
  const uint64_t decode_seed = master();

  UrlCodeParams cp;
  cp.domain_bits = c.domain_bits;
  cp.num_coords = num_coords;
  cp.hash_range = y_range;
  cp.expander_degree = expander_degree;
  cp.alpha = alpha;
  auto code_or = UrlCode::Create(cp, code_seed);
  LDPHH_RETURN_IF_ERROR(code_or.status());
  auto code = std::make_unique<UrlCode>(std::move(code_or).value());
  const int lz = code->PayloadBits();

  Rng bucket_rng(bucket_seed);
  const int g_independence = std::min(64, 2 * c.domain_bits);
  auto bucket_hash = std::make_unique<KWiseHash>(
      g_independence, static_cast<uint64_t>(num_buckets), bucket_rng);

  PesAggregator::Init init;
  init.common = c;
  init.num_coords = num_coords;
  init.num_buckets = num_buckets;
  init.y_range = y_range;
  init.payload_bits = lz;
  init.list_cap = list_cap;
  init.threshold_sigmas = sigmas;
  init.group_seed = group_seed;
  init.decode_seed = decode_seed;
  init.code = std::move(code);
  init.bucket_hash = std::move(bucket_hash);

  const int num_groups = num_coords * lz;
  const uint64_t cell_domain = static_cast<uint64_t>(num_buckets) *
                               static_cast<uint64_t>(y_range) * 2;
  init.cell_fo.reserve(static_cast<size_t>(num_groups));
  for (int q = 0; q < num_groups; ++q) {
    init.cell_fo.emplace_back(cell_domain, c.eps / 2.0);
  }

  ProtocolConfig resolved(config.protocol());
  EchoCommon(c, &resolved);
  resolved.SetUint("num_coords", static_cast<uint64_t>(num_coords))
      .SetUint("hash_range", static_cast<uint64_t>(y_range))
      .SetUint("expander_degree", static_cast<uint64_t>(expander_degree))
      .SetUint("num_buckets", static_cast<uint64_t>(num_buckets))
      .SetDouble("bucket_mult", bucket_mult)
      .SetDouble("threshold_sigmas", sigmas)
      .SetUint("list_cap", static_cast<uint64_t>(list_cap))
      .SetDouble("alpha", alpha);
  auto global_or = MakeGlobalFo(config, c, global_seed, &resolved);
  LDPHH_RETURN_IF_ERROR(global_or.status());
  init.global = std::move(global_or).value();
  init.config = std::move(resolved);
  {
    Rng probe(1);
    init.cell_bits = init.cell_fo[0].Encode(0, probe).num_bits;
  }
  init.global_bits = init.global->ReportBits();
  LDPHH_RETURN_IF_ERROR(CheckPackedWidth(init.cell_bits, init.global_bits,
                                         "private_expander_sketch"));
  return std::unique_ptr<Aggregator>(new PesAggregator(std::move(init)));
}

StatusOr<std::unique_ptr<Aggregator>> MakeSuccinctHistAggregator(
    const ProtocolConfig& config) {
  LDPHH_RETURN_IF_ERROR(config.ExpectKeys(
      {"domain_bits", "eps", "beta", "seed", "threshold_sigmas", "list_cap"}));
  HhCommon c;
  uint64_t domain_bits = 0;
  LDPHH_RETURN_IF_ERROR(config.GetUint("domain_bits", &domain_bits));
  LDPHH_RETURN_IF_ERROR(config.GetDouble("eps", &c.eps));
  if (domain_bits < 4 || domain_bits > 24) {
    return Status::InvalidArgument(
        "succinct_hist: the full-domain scan needs domain_bits in [4, 24]");
  }
  if (!(c.eps > 0.0) || !(c.eps <= 64.0)) {
    return Status::InvalidArgument("succinct_hist: eps must be in (0, 64]");
  }
  c.domain_bits = static_cast<int>(domain_bits);
  c.beta = config.GetDoubleOr("beta", 1e-3);
  if (!(c.beta > 0.0 && c.beta < 1.0)) {
    return Status::InvalidArgument("succinct_hist: beta must be in (0, 1)");
  }
  c.seed = config.GetUintOr("seed", 1);
  const double sigmas = config.GetDoubleOr("threshold_sigmas", 4.0);
  LDPHH_RETURN_IF_ERROR(CheckSigmas(sigmas, "succinct_hist"));
  uint64_t list_cap_u = 0;
  LDPHH_RETURN_IF_ERROR(
      config.GetUintIn("list_cap", 256, 1, uint64_t{1} << 20, &list_cap_u));
  const int list_cap = static_cast<int>(list_cap_u);

  Rng master(c.seed);
  const uint64_t sign_seed = master();

  ProtocolConfig resolved(config.protocol());
  resolved.SetUint("domain_bits", domain_bits)
      .SetDouble("eps", c.eps)
      .SetDouble("beta", c.beta)
      .SetUint("seed", c.seed)
      .SetDouble("threshold_sigmas", sigmas)
      .SetUint("list_cap", static_cast<uint64_t>(list_cap));
  return std::unique_ptr<Aggregator>(new SuccinctHistAggregator(
      std::move(resolved), c, sigmas, list_cap, sign_seed));
}

}  // namespace ldphh
