#include "src/protocols/private_expander_sketch.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_set>

#include "src/common/math_util.h"
#include "src/common/timer.h"
#include "src/freq/hadamard_response.h"
#include "src/hashing/kwise_hash.h"

namespace ldphh {

namespace {

// Default M for a domain width: keeps the RS chunk at 1-2 bytes.
int AutoNumCoords(int domain_bits) {
  if (domain_bits <= 32) return 8;
  if (domain_bits <= 96) return 16;
  return 32;
}

}  // namespace

PrivateExpanderSketch::PrivateExpanderSketch(const PesParams& params,
                                             UrlCodeParams code_params,
                                             int payload_bits)
    : params_(params), code_params_(code_params), payload_bits_(payload_bits) {}

StatusOr<PrivateExpanderSketch> PrivateExpanderSketch::Create(
    const PesParams& params) {
  PesParams p = params;
  if (p.domain_bits < 8 || p.domain_bits > 256) {
    return Status::InvalidArgument("PES: domain_bits must be in [8, 256]");
  }
  if (p.epsilon <= 0.0) {
    return Status::InvalidArgument("PES: epsilon must be positive");
  }
  if (p.beta <= 0.0 || p.beta >= 1.0) {
    return Status::InvalidArgument("PES: beta must be in (0, 1)");
  }
  if (p.num_coords == 0) p.num_coords = AutoNumCoords(p.domain_bits);
  if (p.list_cap == 0) p.list_cap = 4 * p.domain_bits;
  if (p.num_shards < 1 || p.num_shards > 256) {
    return Status::InvalidArgument("PES: num_shards must be in [1, 256]");
  }

  UrlCodeParams cp;
  cp.domain_bits = p.domain_bits;
  cp.num_coords = p.num_coords;
  cp.hash_range = p.hash_range;
  cp.expander_degree = p.expander_degree;
  cp.alpha = p.alpha;
  // Validate the code construction once with a throwaway seed (the per-run
  // code is seeded from the run seed).
  auto probe = UrlCode::Create(cp, /*seed=*/1);
  if (!probe.ok()) return probe.status();
  return PrivateExpanderSketch(p, cp, probe.value().PayloadBits());
}

int PrivateExpanderSketch::ResolveBuckets(uint64_t n) const {
  if (params_.num_buckets > 0) return params_.num_buckets;
  const double logx = static_cast<double>(params_.domain_bits);
  const double b = params_.bucket_mult * params_.epsilon *
                   std::sqrt(static_cast<double>(n)) /
                   (10.0 * std::pow(logx, 1.5));
  return std::max(1, static_cast<int>(std::llround(b)));
}

double PrivateExpanderSketch::DetectionThreshold(uint64_t n) const {
  const double e = std::exp(params_.epsilon / 2.0);
  const double c = (e + 1.0) / (e - 1.0);
  const double groups =
      static_cast<double>(params_.num_coords) * static_cast<double>(payload_bits_);
  return 4.5 * c * std::sqrt(static_cast<double>(n) * groups);
}

StatusOr<HeavyHitterResult> PrivateExpanderSketch::Run(
    const std::vector<DomainItem>& database, uint64_t seed) {
  const uint64_t n = database.size();
  if (n < 16) return Status::InvalidArgument("PES: need at least 16 users");

  const int m_count = params_.num_coords;
  const int y_range = params_.hash_range;
  const int b_count = ResolveBuckets(n);
  const double eps_half = params_.epsilon / 2.0;

  Rng master(seed);
  const uint64_t code_seed = master();
  const uint64_t bucket_seed = master();
  const uint64_t group_seed = master();
  const uint64_t global_seed = master();
  Rng user_coins(master());
  Rng decode_rng(master());

  // --- Public randomness ----------------------------------------------
  auto code_or = UrlCode::Create(code_params_, code_seed);
  if (!code_or.ok()) return code_or.status();
  const UrlCode code = std::move(code_or).value();
  const int lz = code.PayloadBits();
  const int num_groups = m_count * lz;

  // Bucket hash g: (Cg log|X|)-wise independent; degree capped at 64 to
  // keep the per-user evaluation O~(1) in practice.
  Rng bucket_rng(bucket_seed);
  const int g_independence = std::min(64, 2 * params_.domain_bits);
  KWiseHash bucket_hash(g_independence, static_cast<uint64_t>(b_count),
                        bucket_rng);

  // Per-(m, j) small-domain oracles (Theorem 3.8) over [B] x [Y] x {0,1}.
  const uint64_t cell_domain =
      static_cast<uint64_t>(b_count) * static_cast<uint64_t>(y_range) * 2;
  auto make_cell_fos = [&] {
    std::vector<HadamardResponseFO> fos;
    fos.reserve(static_cast<size_t>(num_groups));
    for (int q = 0; q < num_groups; ++q) {
      fos.emplace_back(cell_domain, eps_half);
    }
    return fos;
  };
  std::vector<HadamardResponseFO> cell_fo = make_cell_fos();

  // Global Hashtogram (Theorem 3.7) for step 5.
  HashtogramParams ht_params = params_.global_fo;
  if (ht_params.beta <= 0.0) ht_params.beta = params_.beta;
  Hashtogram global_fo(n, eps_half, ht_params, global_seed);

  HeavyHitterResult result;
  result.metrics.num_users = n;

  // --- Client side -------------------------------------------------------
  // Reports are buffered so user and server time are measured separately.
  struct UserReport {
    int group;
    FoReport cell;
    FoReport global;
  };
  std::vector<UserReport> reports(static_cast<size_t>(n));

  Timer user_timer;
  for (uint64_t i = 0; i < n; ++i) {
    const DomainItem& x = database[i];
    const int q = static_cast<int>(Mix64(group_seed ^ i) %
                                   static_cast<uint64_t>(num_groups));
    const int m = q / lz;
    const int j = q % lz;

    const UrlCode::Codeword cw = code.Encode(x);
    const uint64_t b = bucket_hash(x);
    const uint64_t y = cw.y[static_cast<size_t>(m)];
    const uint64_t payload =
        code.PackPayload(cw.symbols[static_cast<size_t>(m)]);
    const uint64_t bit = (payload >> j) & 1;
    const uint64_t cell = (b * static_cast<uint64_t>(y_range) + y) * 2 + bit;

    UserReport& r = reports[static_cast<size_t>(i)];
    r.group = q;
    r.cell = cell_fo[static_cast<size_t>(q)].Encode(cell, user_coins);
    r.global = global_fo.Encode(i, x, user_coins);
  }
  result.metrics.user_seconds_total = user_timer.Seconds();
  for (uint64_t i = 0; i < n; ++i) {
    const auto& r = reports[static_cast<size_t>(i)];
    const uint64_t bits =
        static_cast<uint64_t>(r.cell.num_bits + r.global.num_bits);
    result.metrics.comm_bits_total += bits;
    result.metrics.comm_bits_max_user =
        std::max(result.metrics.comm_bits_max_user, bits);
  }

  // --- Server side ---------------------------------------------------------
  Timer server_timer;
  const int num_shards = params_.num_shards;
  if (num_shards <= 1) {
    for (uint64_t i = 0; i < n; ++i) {
      const auto& r = reports[static_cast<size_t>(i)];
      cell_fo[static_cast<size_t>(r.group)].Aggregate(r.cell);
      global_fo.Aggregate(i, r.global);
    }
  } else {
    // Sharded server: strided slices into per-worker oracle replicas,
    // merged exactly afterwards (see treehist.cc for the argument).
    struct Replica {
      std::vector<HadamardResponseFO> cell;
      Hashtogram global;
    };
    std::vector<Replica> replicas;
    replicas.reserve(static_cast<size_t>(num_shards - 1));
    for (int s = 1; s < num_shards; ++s) {
      replicas.push_back(Replica{make_cell_fos(),
                                 Hashtogram(n, eps_half, ht_params, global_seed)});
    }
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      workers.emplace_back([&, s] {
        auto& cf = (s == 0) ? cell_fo : replicas[static_cast<size_t>(s - 1)].cell;
        auto& gf = (s == 0) ? global_fo : replicas[static_cast<size_t>(s - 1)].global;
        for (uint64_t i = static_cast<uint64_t>(s); i < n;
             i += static_cast<uint64_t>(num_shards)) {
          const auto& r = reports[static_cast<size_t>(i)];
          cf[static_cast<size_t>(r.group)].Aggregate(r.cell);
          gf.Aggregate(i, r.global);
        }
      });
    }
    for (auto& w : workers) w.join();
    for (auto& rep : replicas) {
      for (int q = 0; q < num_groups; ++q) {
        LDPHH_RETURN_IF_ERROR(cell_fo[static_cast<size_t>(q)].Merge(
            rep.cell[static_cast<size_t>(q)]));
      }
      LDPHH_RETURN_IF_ERROR(global_fo.Merge(rep.global));
    }
  }
  for (auto& fo : cell_fo) fo.Finalize();
  global_fo.Finalize();

  // Step 3: per-(m, b) candidate lists.
  // Count noise: summing 2 Lz cell estimates, each sd c sqrt(n/(M Lz)),
  // gives sd c sqrt(2 n / M).
  const double e = std::exp(eps_half);
  const double c_eps = (e + 1.0) / (e - 1.0);
  const double count_sd =
      c_eps * std::sqrt(2.0 * static_cast<double>(n) /
                        static_cast<double>(m_count));
  const double tau = params_.threshold_sigmas * count_sd;

  const std::vector<DomainItem> recovered =
      PesRecoverCandidates(cell_fo, code, bucket_hash, m_count, b_count,
                           y_range, lz, params_.list_cap, tau, decode_rng);

  // Step 5: estimate frequencies of the candidates with the global oracle.
  result.entries.reserve(recovered.size());
  for (const DomainItem& x : recovered) {
    result.entries.push_back(HeavyHitterEntry{x, global_fo.Estimate(x)});
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const HeavyHitterEntry& a, const HeavyHitterEntry& b) {
              return a.estimate > b.estimate;
            });
  result.metrics.server_seconds = server_timer.Seconds();

  // Memory: the cell oracles + the global oracle (the report buffer is a
  // measurement artifact of the simulation, not a protocol structure).
  size_t mem = global_fo.MemoryBytes();
  for (const auto& fo : cell_fo) mem += fo.MemoryBytes();
  result.metrics.server_memory_bytes = mem;

  // Public randomness a user consumes: the bucket-hash coefficients, its
  // coordinate hashes + expander slots, and the Hashtogram row hashes
  // (all 61-bit field elements), plus the group-assignment word.
  const uint64_t words =
      static_cast<uint64_t>(g_independence + 4) +           // g
      static_cast<uint64_t>(2 * m_count + 4) +              // h_1..h_M
      static_cast<uint64_t>(m_count * params_.expander_degree) +  // Gamma
      static_cast<uint64_t>(6 * global_fo.rows()) + 1;      // Hashtogram
  result.metrics.public_random_bits_per_user = words * 61;

  return result;
}

std::vector<DomainItem> PesRecoverCandidates(
    const std::vector<HadamardResponseFO>& cell_fo, const UrlCode& code,
    const KWiseHash& bucket_hash, int num_coords, int num_buckets,
    int hash_range, int payload_bits, int list_cap, double tau,
    Rng& decode_rng) {
  struct Candidate {
    uint16_t y;
    uint64_t payload;
    double count;
  };
  // Step 3: lists[b][m] = entries for bucket b, coordinate m.
  std::vector<std::vector<std::vector<UrlCode::ListEntry>>> lists(
      static_cast<size_t>(num_buckets),
      std::vector<std::vector<UrlCode::ListEntry>>(
          static_cast<size_t>(num_coords)));

  std::vector<Candidate> cands;
  for (int m = 0; m < num_coords; ++m) {
    for (int b = 0; b < num_buckets; ++b) {
      cands.clear();
      for (int y = 0; y < hash_range; ++y) {
        const uint64_t base =
            (static_cast<uint64_t>(b) * static_cast<uint64_t>(hash_range) +
             static_cast<uint64_t>(y)) *
            2;
        double count = 0.0;
        uint64_t payload = 0;
        for (int j = 0; j < payload_bits; ++j) {
          const auto& fo = cell_fo[static_cast<size_t>(m * payload_bits + j)];
          const double e0 = fo.Estimate(base);
          const double e1 = fo.Estimate(base + 1);
          count += e0 + e1;
          if (e1 > e0) payload |= uint64_t{1} << j;
        }
        if (count >= tau) {
          cands.push_back(Candidate{static_cast<uint16_t>(y), payload, count});
        }
      }
      if (static_cast<int>(cands.size()) > list_cap) {
        std::partial_sort(cands.begin(), cands.begin() + list_cap, cands.end(),
                          [](const Candidate& lhs, const Candidate& rhs) {
                            return lhs.count > rhs.count;
                          });
        cands.resize(static_cast<size_t>(list_cap));
      }
      auto& lst = lists[static_cast<size_t>(b)][static_cast<size_t>(m)];
      lst.reserve(cands.size());
      for (const Candidate& cand : cands) {
        lst.push_back(UrlCode::ListEntry{cand.y, cand.payload});
      }
    }
  }

  // Step 4: per-bucket decode; verify the bucket hash.
  std::unordered_set<DomainItem, DomainItemHash> recovered;
  std::vector<DomainItem> ordered;
  for (int b = 0; b < num_buckets; ++b) {
    const auto items = code.Decode(lists[static_cast<size_t>(b)], decode_rng);
    for (const DomainItem& x : items) {
      if (bucket_hash(x) != static_cast<uint64_t>(b)) continue;
      if (recovered.insert(x).second) ordered.push_back(x);
    }
  }
  return ordered;
}

}  // namespace ldphh
