/// \file serving_util.h
/// \brief Helpers shared by the fo_serving / hh_serving adapter files:
/// report-shape validation, item-width validation, and canonical top-k
/// selection. One copy, so the validators and the EstimateTopK ordering
/// cannot drift between the oracle and heavy-hitter adapters.

#ifndef LDPHH_PROTOCOLS_SERVING_UTIL_H_
#define LDPHH_PROTOCOLS_SERVING_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/bit_util.h"
#include "src/common/status.h"
#include "src/freq/freq_oracle.h"
#include "src/protocols/aggregator.h"

namespace ldphh {
namespace serving {

/// A structurally valid report for this config: exactly the expected width,
/// no payload bits above it.
inline Status CheckReportShape(const FoReport& r, int expected_bits,
                               const std::string& name) {
  if (r.num_bits != expected_bits) {
    return Status::InvalidArgument(
        name + ": report has " + std::to_string(r.num_bits) +
        " bits, config requires " + std::to_string(expected_bits));
  }
  if (r.num_bits < 64 && (r.bits >> r.num_bits) != 0) {
    return Status::InvalidArgument(name + ": payload bits beyond num_bits");
  }
  return Status::OK();
}

/// Rejects an item wider than the config's domain_bits (the Encode-side
/// domain check for the bitstring-domain protocols).
inline Status CheckItemWidth(const DomainItem& x, int domain_bits,
                             const std::string& name) {
  DomainItem t = x;
  t.Truncate(domain_bits);
  if (t != x) {
    return Status::InvalidArgument(name + ": value wider than domain_bits=" +
                                   std::to_string(domain_bits));
  }
  return Status::OK();
}

/// Sorts canonically (HeavyHitterEntryOrder) and truncates to k. For
/// already-small candidate lists (the heavy-hitter decodes).
inline std::vector<HeavyHitterEntry> SortTopK(
    std::vector<HeavyHitterEntry> entries, size_t k) {
  std::sort(entries.begin(), entries.end(), HeavyHitterEntryOrder);
  if (entries.size() > k) entries.resize(k);
  return entries;
}

/// \brief Streaming bounded top-k selection for full-domain scans.
///
/// Keeps the k best entries under HeavyHitterEntryOrder in O(log k) per Add
/// and O(k) memory, and Take() returns them canonically sorted — the list is
/// bit-for-bit what materializing every entry and SortTopK-ing it would
/// produce (the ordering is total: items are unique), without the O(domain)
/// vector a 2^24-element scan would otherwise allocate.
class TopKAccumulator {
 public:
  explicit TopKAccumulator(size_t k) : k_(k) {}

  void Add(const DomainItem& item, double estimate) {
    if (k_ == 0) return;
    const HeavyHitterEntry e{item, estimate};
    // Heap ordered by HeavyHitterEntryOrder-as-less ("better is smaller"),
    // so the top is the worst kept entry — the eviction candidate.
    if (heap_.size() < k_) {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), HeavyHitterEntryOrder);
    } else if (HeavyHitterEntryOrder(e, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), HeavyHitterEntryOrder);
      heap_.back() = e;
      std::push_heap(heap_.begin(), heap_.end(), HeavyHitterEntryOrder);
    }
  }

  std::vector<HeavyHitterEntry> Take() {
    std::sort(heap_.begin(), heap_.end(), HeavyHitterEntryOrder);
    return std::move(heap_);
  }

 private:
  size_t k_;
  std::vector<HeavyHitterEntry> heap_;
};

}  // namespace serving
}  // namespace ldphh

#endif  // LDPHH_PROTOCOLS_SERVING_UTIL_H_
