/// \file fo_serving.h
/// \brief `Aggregator` adapters over the frequency oracles, so every oracle
/// is servable through the registry (src/protocols/registry.h).
///
/// Config grammars (defaults in brackets; every factory resolves the auto
/// fields and echoes the resolved values into `config()`):
///
///   k_rr(domain, eps)                      — k-ary randomized response
///   rappor_unary(domain, eps)              — basic RAPPOR, domain in [2,56]
///   olh(domain, eps, seed[1])              — optimized local hashing
///   hadamard_response(domain, eps)         — Theorem 3.8 one-bit reports
///   count_mean_sketch(domain_bits, eps, n_hint[65536], seed[1],
///                     rows[16], width[auto; wire cap 56])
///   hashtogram(domain_bits, eps, n_hint[65536], seed[1],
///              rows[auto], table_size[auto], beta[1e-3])
///
/// The sketch oracles (count_mean_sketch, hashtogram) estimate arbitrary
/// items, so their EstimateTopK scans [0, 2^domain_bits); domain_bits is
/// capped at 24 to keep the scan honest. Small-domain oracles scan their
/// domain directly (capped at 2^24 likewise).

#ifndef LDPHH_PROTOCOLS_FO_SERVING_H_
#define LDPHH_PROTOCOLS_FO_SERVING_H_

#include <memory>

#include "src/protocols/aggregator.h"
#include "src/protocols/protocol_config.h"

namespace ldphh {

StatusOr<std::unique_ptr<Aggregator>> MakeKRrAggregator(
    const ProtocolConfig& config);
StatusOr<std::unique_ptr<Aggregator>> MakeRapporUnaryAggregator(
    const ProtocolConfig& config);
StatusOr<std::unique_ptr<Aggregator>> MakeOlhAggregator(
    const ProtocolConfig& config);
StatusOr<std::unique_ptr<Aggregator>> MakeHadamardResponseAggregator(
    const ProtocolConfig& config);
StatusOr<std::unique_ptr<Aggregator>> MakeCountMeanSketchAggregator(
    const ProtocolConfig& config);
StatusOr<std::unique_ptr<Aggregator>> MakeHashtogramAggregator(
    const ProtocolConfig& config);

}  // namespace ldphh

#endif  // LDPHH_PROTOCOLS_FO_SERVING_H_
