#include "src/protocols/metrics.h"

#include <cstdio>

#include "src/obs/json_writer.h"

namespace ldphh {

std::string ProtocolMetrics::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "server=%.3fs user_avg=%.2fus comm_avg=%.1fb comm_max=%llub "
                "pub_rand=%llub mem=%zuB n=%llu",
                server_seconds, UserSecondsAvg() * 1e6, CommBitsAvg(),
                static_cast<unsigned long long>(comm_bits_max_user),
                static_cast<unsigned long long>(public_random_bits_per_user),
                server_memory_bytes, static_cast<unsigned long long>(num_users));
  return std::string(buf);
}

std::string ProtocolMetrics::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("server_seconds").Double(server_seconds);
  w.Key("user_seconds_total").Double(user_seconds_total);
  w.Key("user_seconds_avg").Double(UserSecondsAvg());
  w.Key("comm_bits_total").Uint(comm_bits_total);
  w.Key("comm_bits_avg").Double(CommBitsAvg());
  w.Key("comm_bits_max_user").Uint(comm_bits_max_user);
  w.Key("public_random_bits_per_user").Uint(public_random_bits_per_user);
  w.Key("server_memory_bytes").Uint(static_cast<uint64_t>(server_memory_bytes));
  w.Key("num_users").Uint(num_users);
  w.EndObject();
  return w.str();
}

}  // namespace ldphh
