#include "src/protocols/metrics.h"

#include <cstdio>

namespace ldphh {

std::string ProtocolMetrics::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "server=%.3fs user_avg=%.2fus comm_avg=%.1fb comm_max=%llub "
                "pub_rand=%llub mem=%zuB n=%llu",
                server_seconds, UserSecondsAvg() * 1e6, CommBitsAvg(),
                static_cast<unsigned long long>(comm_bits_max_user),
                static_cast<unsigned long long>(public_random_bits_per_user),
                server_memory_bytes, static_cast<unsigned long long>(num_users));
  return std::string(buf);
}

}  // namespace ldphh
