#include "src/protocols/registry.h"

#include <utility>

#include "src/protocols/fo_serving.h"
#include "src/protocols/hh_serving.h"

namespace ldphh {

Status ProtocolRegistry::Register(const std::string& name, uint16_t wire_id,
                                  Factory factory) {
  if (name.empty() || factory == nullptr) {
    return Status::InvalidArgument("protocol registry: empty name or factory");
  }
  if (wire_id == 0) {
    // 0 means "unstamped" on the wire, accepted by every server — a
    // protocol registered under it would silently lose the cross-protocol
    // batch rejection.
    return Status::InvalidArgument(
        "protocol registry: wire id 0 is reserved for unstamped batches");
  }
  MutexLock lock(&mu_);
  for (const auto& [existing, entry] : entries_) {
    if (entry.wire_id == wire_id) {
      return Status::InvalidArgument("protocol registry: wire id " +
                                     std::to_string(wire_id) +
                                     " already taken by " + existing);
    }
  }
  if (!entries_.emplace(name, Entry{wire_id, std::move(factory)}).second) {
    return Status::InvalidArgument("protocol registry: duplicate name " + name);
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<Aggregator>> ProtocolRegistry::Create(
    const ProtocolConfig& config) const {
  Factory factory;
  {
    MutexLock lock(&mu_);
    const auto it = entries_.find(config.protocol());
    if (it == entries_.end()) {
      std::string known;
      for (const auto& [name, entry] : entries_) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      return Status::InvalidArgument("protocol registry: unknown protocol '" +
                                     config.protocol() + "' (known: " + known +
                                     ")");
    }
    factory = it->second.factory;
  }
  auto created_or = factory(config);
  LDPHH_RETURN_IF_ERROR(created_or.status());
  auto created = std::move(created_or).value();
  if (created == nullptr) {
    return Status::Internal("protocol registry: factory for " +
                            config.protocol() + " returned null");
  }
  return created;
}

StatusOr<uint16_t> ProtocolRegistry::WireIdOf(const std::string& name) const {
  MutexLock lock(&mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::InvalidArgument("protocol registry: unknown protocol '" +
                                   name + "'");
  }
  return it->second.wire_id;
}

std::vector<std::string> ProtocolRegistry::Names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

ProtocolRegistry& ProtocolRegistry::Global() {
  static ProtocolRegistry* registry = [] {
    auto* r = new ProtocolRegistry();
    const auto id = [](ProtocolWireId w) { return static_cast<uint16_t>(w); };
    // Registration of a built-in cannot fail (names and ids are distinct by
    // construction); CHECK rather than silently dropping a protocol.
    LDPHH_CHECK(
        r->Register("k_rr", id(ProtocolWireId::kKRr), MakeKRrAggregator).ok(),
        "registry: k_rr");
    LDPHH_CHECK(r->Register("rappor_unary", id(ProtocolWireId::kRapporUnary),
                            MakeRapporUnaryAggregator)
                    .ok(),
                "registry: rappor_unary");
    LDPHH_CHECK(
        r->Register("olh", id(ProtocolWireId::kOlh), MakeOlhAggregator).ok(),
        "registry: olh");
    LDPHH_CHECK(r->Register("hadamard_response",
                            id(ProtocolWireId::kHadamardResponse),
                            MakeHadamardResponseAggregator)
                    .ok(),
                "registry: hadamard_response");
    LDPHH_CHECK(r->Register("count_mean_sketch",
                            id(ProtocolWireId::kCountMeanSketch),
                            MakeCountMeanSketchAggregator)
                    .ok(),
                "registry: count_mean_sketch");
    LDPHH_CHECK(r->Register("hashtogram", id(ProtocolWireId::kHashtogram),
                            MakeHashtogramAggregator)
                    .ok(),
                "registry: hashtogram");
    LDPHH_CHECK(r->Register("bitstogram", id(ProtocolWireId::kBitstogram),
                            MakeBitstogramAggregator)
                    .ok(),
                "registry: bitstogram");
    LDPHH_CHECK(r->Register("treehist", id(ProtocolWireId::kTreeHist),
                            MakeTreeHistAggregator)
                    .ok(),
                "registry: treehist");
    LDPHH_CHECK(r->Register("private_expander_sketch",
                            id(ProtocolWireId::kPrivateExpanderSketch),
                            MakePesAggregator)
                    .ok(),
                "registry: private_expander_sketch");
    LDPHH_CHECK(r->Register("succinct_hist", id(ProtocolWireId::kSuccinctHist),
                            MakeSuccinctHistAggregator)
                    .ok(),
                "registry: succinct_hist");
    return r;
  }();
  return *registry;
}

StatusOr<std::unique_ptr<Aggregator>> CreateAggregator(
    const ProtocolConfig& config) {
  return ProtocolRegistry::Global().Create(config);
}

}  // namespace ldphh
