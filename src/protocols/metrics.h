/// \file metrics.h
/// \brief Resource accounting for the Table-1 comparison.
///
/// Protocols run inside a simulation harness that measures, per run, the
/// seven Table-1 rows: server time, user time, server memory, user memory,
/// communication per user, public randomness per user, and worst-case
/// error (the last is computed by the evaluation helpers, not here).

#ifndef LDPHH_PROTOCOLS_METRICS_H_
#define LDPHH_PROTOCOLS_METRICS_H_

#include <cstdint>
#include <string>

namespace ldphh {

/// Resource measurements of one protocol execution.
struct ProtocolMetrics {
  double server_seconds = 0.0;       ///< Aggregation + decoding wall time.
  double user_seconds_total = 0.0;   ///< Sum of all users' encode time.
  uint64_t comm_bits_total = 0;      ///< Total bits users sent.
  uint64_t comm_bits_max_user = 0;   ///< Max bits any single user sent.
  uint64_t public_random_bits_per_user = 0;  ///< Seed words the user expands.
  size_t server_memory_bytes = 0;    ///< Peak accounted server structures.
  uint64_t num_users = 0;

  double UserSecondsAvg() const {
    return num_users ? user_seconds_total / static_cast<double>(num_users) : 0.0;
  }
  double CommBitsAvg() const {
    return num_users ? static_cast<double>(comm_bits_total) /
                           static_cast<double>(num_users)
                     : 0.0;
  }

  /// One human-readable line (Table-1 shorthand).
  std::string ToString() const;

  /// The same measurements as one JSON object, rendered through the shared
  /// obs::JsonWriter so harness output and runtime metrics expositions use
  /// one number-formatting/escaping policy.
  std::string ToJson() const;
};

}  // namespace ldphh

#endif  // LDPHH_PROTOCOLS_METRICS_H_
