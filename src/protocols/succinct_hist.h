/// \file succinct_hist.h
/// \brief The Bassily-Smith 2015 baseline (succinct histograms, Table 1's
/// third column).
///
/// Every user reports a single randomized-response bit of a public random
/// +-1 projection of its item (a personal 4-wise sign phi_i(x)); the server
/// estimates f^(x) = c_eps sum_i b~_i phi_i(x), which costs Theta(n) per
/// query, and finds heavy hitters by scanning the whole domain — time
/// Theta(n |X|). With the paper's |X| = poly(n) setting this reproduces the
/// O~(n^2.5) server time of Table 1. The per-user cost here is O~(1)
/// because we derive the projection from a seed; the O~(n^1.5) user time of
/// Table 1 is the cost of materializing the public randomness without
/// random access (footnote 2), which we account for but do not burn cycles
/// on — see EXPERIMENTS.md.

#ifndef LDPHH_PROTOCOLS_SUCCINCT_HIST_H_
#define LDPHH_PROTOCOLS_SUCCINCT_HIST_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/protocols/heavy_hitters.h"

namespace ldphh {

/// Tuning parameters for the succinct-histogram baseline.
struct SuccinctHistParams {
  int domain_bits = 16;   ///< Scan cost is n * 2^domain_bits: keep small.
  double epsilon = 2.0;
  double beta = 1e-3;
  double threshold_sigmas = 4.0;
  int list_cap = 256;
};

/// \brief The [4] baseline protocol.
class SuccinctHist final : public HeavyHitterProtocol {
 public:
  static StatusOr<SuccinctHist> Create(const SuccinctHistParams& params);

  StatusOr<HeavyHitterResult> Run(const std::vector<DomainItem>& database,
                                  uint64_t seed) override;
  std::string Name() const override { return "succinct-hist"; }
  double Epsilon() const override { return params_.epsilon; }

  /// Detection threshold ~ threshold_sigmas * c_eps sqrt(n (D + ln(1/beta))).
  double DetectionThreshold(uint64_t n) const;

  const SuccinctHistParams& params() const { return params_; }

 private:
  explicit SuccinctHist(const SuccinctHistParams& params) : params_(params) {}

  SuccinctHistParams params_;
};

/// The personal +-1 projection phi_i(x), derived from (seed, user, item).
/// Public randomness: both the client encode and the server scan evaluate
/// it, so it is shared by Run and the streaming serving aggregator.
inline int SuccinctHistSign(uint64_t sign_seed, uint64_t user,
                            const DomainItem& x) {
  const uint64_t h = Mix64(sign_seed ^ Mix64(user + 1) ^ x.Fingerprint());
  return (h & 1) ? 1 : -1;
}

/// The server decode: full-domain scan of f^(x) = c_eps sum_i b~_i phi_i(x)
/// over the (user, report-bit) pairs, keeping estimates >= tau, capped at
/// \p list_cap by estimate. Entries return sorted by estimate descending
/// (ties: value ascending). Shared by Run and the serving aggregator.
std::vector<HeavyHitterEntry> SuccinctHistScan(
    uint64_t sign_seed, const std::vector<std::pair<uint64_t, int8_t>>& reports,
    int domain_bits, double epsilon, double tau, int list_cap);

}  // namespace ldphh

#endif  // LDPHH_PROTOCOLS_SUCCINCT_HIST_H_
