#include "src/protocols/bitstogram.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_set>

#include "src/common/math_util.h"
#include "src/common/timer.h"
#include "src/freq/hadamard_response.h"
#include "src/hashing/kwise_hash.h"

namespace ldphh {

StatusOr<Bitstogram> Bitstogram::Create(const BitstogramParams& params) {
  BitstogramParams p = params;
  if (p.domain_bits < 8 || p.domain_bits > 256) {
    return Status::InvalidArgument("Bitstogram: domain_bits must be in [8, 256]");
  }
  if (p.epsilon <= 0.0) {
    return Status::InvalidArgument("Bitstogram: epsilon must be positive");
  }
  if (p.beta <= 0.0 || p.beta >= 1.0) {
    return Status::InvalidArgument("Bitstogram: beta must be in (0, 1)");
  }
  if (p.cohorts == 0) {
    p.cohorts = std::max(1, static_cast<int>(std::ceil(std::log2(1.0 / p.beta))));
  }
  if (p.num_shards < 1 || p.num_shards > 256) {
    return Status::InvalidArgument("Bitstogram: num_shards must be in [1, 256]");
  }
  return Bitstogram(p);
}

double Bitstogram::DetectionThreshold(uint64_t n) const {
  const double e = std::exp(params_.epsilon / 2.0);
  const double c = (e + 1.0) / (e - 1.0);
  const double groups = static_cast<double>(params_.cohorts) *
                        static_cast<double>(params_.domain_bits);
  return 4.5 * c * std::sqrt(static_cast<double>(n) * groups);
}

StatusOr<HeavyHitterResult> Bitstogram::Run(
    const std::vector<DomainItem>& database, uint64_t seed) {
  const uint64_t n = database.size();
  if (n < 16) return Status::InvalidArgument("Bitstogram: need >= 16 users");

  const int d_bits = params_.domain_bits;
  const int rho = params_.cohorts;
  const double eps_half = params_.epsilon / 2.0;

  int y_range = params_.hash_range;
  if (y_range == 0) {
    y_range = static_cast<int>(
        NextPow2(static_cast<uint64_t>(2.0 * std::sqrt(static_cast<double>(n)))));
  }

  Rng master(seed);
  const uint64_t hash_seed = master();
  const uint64_t group_seed = master();
  const uint64_t global_seed = master();
  Rng user_coins(master());

  // Public randomness: one pairwise hash per cohort.
  HashFamily cohort_hash(rho, /*k=*/2, static_cast<uint64_t>(y_range), hash_seed);

  // One small-domain oracle per (cohort, bit position) over [Yb] x {0,1}.
  const int num_groups = rho * d_bits;
  auto make_cell_fos = [&] {
    std::vector<HadamardResponseFO> fos;
    fos.reserve(static_cast<size_t>(num_groups));
    for (int q = 0; q < num_groups; ++q) {
      fos.emplace_back(static_cast<uint64_t>(y_range) * 2, eps_half);
    }
    return fos;
  };
  std::vector<HadamardResponseFO> cell_fo = make_cell_fos();

  HashtogramParams ht_params = params_.global_fo;
  if (ht_params.beta <= 0.0) ht_params.beta = params_.beta;
  Hashtogram global_fo(n, eps_half, ht_params, global_seed);

  HeavyHitterResult result;
  result.metrics.num_users = n;

  struct UserReport {
    int group;
    FoReport cell;
    FoReport global;
  };
  std::vector<UserReport> reports(static_cast<size_t>(n));

  Timer user_timer;
  for (uint64_t i = 0; i < n; ++i) {
    const DomainItem& x = database[i];
    const int q = static_cast<int>(Mix64(group_seed ^ i) %
                                   static_cast<uint64_t>(num_groups));
    const int c = q / d_bits;
    const int j = q % d_bits;
    const uint64_t y = cohort_hash.at(c)(x);
    const uint64_t cell = y * 2 + static_cast<uint64_t>(x.Bit(j));
    UserReport& r = reports[static_cast<size_t>(i)];
    r.group = q;
    r.cell = cell_fo[static_cast<size_t>(q)].Encode(cell, user_coins);
    r.global = global_fo.Encode(i, x, user_coins);
  }
  result.metrics.user_seconds_total = user_timer.Seconds();
  for (const auto& r : reports) {
    const uint64_t bits =
        static_cast<uint64_t>(r.cell.num_bits + r.global.num_bits);
    result.metrics.comm_bits_total += bits;
    result.metrics.comm_bits_max_user =
        std::max(result.metrics.comm_bits_max_user, bits);
  }

  Timer server_timer;
  const int num_shards = params_.num_shards;
  if (num_shards <= 1) {
    for (uint64_t i = 0; i < n; ++i) {
      const auto& r = reports[static_cast<size_t>(i)];
      cell_fo[static_cast<size_t>(r.group)].Aggregate(r.cell);
      global_fo.Aggregate(i, r.global);
    }
  } else {
    // Sharded server: strided slices into per-worker oracle replicas,
    // merged exactly afterwards (see treehist.cc for the argument).
    struct Replica {
      std::vector<HadamardResponseFO> cell;
      Hashtogram global;
    };
    std::vector<Replica> replicas;
    replicas.reserve(static_cast<size_t>(num_shards - 1));
    for (int s = 1; s < num_shards; ++s) {
      replicas.push_back(Replica{make_cell_fos(),
                                 Hashtogram(n, eps_half, ht_params, global_seed)});
    }
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      workers.emplace_back([&, s] {
        auto& cf = (s == 0) ? cell_fo : replicas[static_cast<size_t>(s - 1)].cell;
        auto& gf = (s == 0) ? global_fo : replicas[static_cast<size_t>(s - 1)].global;
        for (uint64_t i = static_cast<uint64_t>(s); i < n;
             i += static_cast<uint64_t>(num_shards)) {
          const auto& r = reports[static_cast<size_t>(i)];
          cf[static_cast<size_t>(r.group)].Aggregate(r.cell);
          gf.Aggregate(i, r.global);
        }
      });
    }
    for (auto& w : workers) w.join();
    for (auto& rep : replicas) {
      for (int q = 0; q < num_groups; ++q) {
        LDPHH_RETURN_IF_ERROR(cell_fo[static_cast<size_t>(q)].Merge(
            rep.cell[static_cast<size_t>(q)]));
      }
      LDPHH_RETURN_IF_ERROR(global_fo.Merge(rep.global));
    }
  }
  for (auto& fo : cell_fo) fo.Finalize();
  global_fo.Finalize();

  // Candidate reconstruction: per cohort, per hash value, majority bit at
  // every position; keep hash values whose support count stands out.
  const double e = std::exp(eps_half);
  const double c_eps = (e + 1.0) / (e - 1.0);
  const double count_sd = c_eps * std::sqrt(2.0 * static_cast<double>(n) /
                                            static_cast<double>(rho));
  const double tau = params_.threshold_sigmas * count_sd;
  const std::vector<DomainItem> recovered = BitstogramRecoverCandidates(
      cell_fo, cohort_hash, rho, d_bits, y_range, params_.list_cap_per_cohort,
      tau);

  result.entries.reserve(recovered.size());
  for (const DomainItem& x : recovered) {
    result.entries.push_back(HeavyHitterEntry{x, global_fo.Estimate(x)});
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const HeavyHitterEntry& a, const HeavyHitterEntry& b) {
              return a.estimate > b.estimate;
            });
  result.metrics.server_seconds = server_timer.Seconds();

  size_t mem = global_fo.MemoryBytes();
  for (const auto& fo : cell_fo) mem += fo.MemoryBytes();
  result.metrics.server_memory_bytes = mem;
  result.metrics.public_random_bits_per_user =
      (static_cast<uint64_t>(2 * rho + 4) + 6 * global_fo.rows() + 1) * 61;

  return result;
}

std::vector<DomainItem> BitstogramRecoverCandidates(
    const std::vector<HadamardResponseFO>& cell_fo,
    const HashFamily& cohort_hash, int cohorts, int domain_bits,
    int hash_range, int list_cap_per_cohort, double tau) {
  struct Candidate {
    DomainItem item;
    double count;
    int y;
  };
  std::unordered_set<DomainItem, DomainItemHash> recovered;
  std::vector<DomainItem> ordered;
  std::vector<Candidate> cands;
  for (int c = 0; c < cohorts; ++c) {
    cands.clear();
    for (int y = 0; y < hash_range; ++y) {
      double count = 0.0;
      DomainItem item;
      for (int j = 0; j < domain_bits; ++j) {
        const auto& fo = cell_fo[static_cast<size_t>(c * domain_bits + j)];
        const double e0 = fo.Estimate(static_cast<uint64_t>(y) * 2);
        const double e1 = fo.Estimate(static_cast<uint64_t>(y) * 2 + 1);
        count += e0 + e1;
        if (e1 > e0) item.SetBit(j, 1);
      }
      if (count >= tau) cands.push_back(Candidate{item, count, y});
    }
    if (static_cast<int>(cands.size()) > list_cap_per_cohort) {
      std::partial_sort(cands.begin(), cands.begin() + list_cap_per_cohort,
                        cands.end(), [](const Candidate& a, const Candidate& b) {
                          return a.count > b.count;
                        });
      cands.resize(static_cast<size_t>(list_cap_per_cohort));
    }
    for (const Candidate& cand : cands) {
      // A candidate is plausible only if it hashes back to its own cell.
      if (static_cast<int>(cohort_hash.at(c)(cand.item)) != cand.y) continue;
      if (recovered.insert(cand.item).second) ordered.push_back(cand.item);
    }
  }
  return ordered;
}

}  // namespace ldphh
