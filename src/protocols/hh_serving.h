/// \file hh_serving.h
/// \brief Streaming `Aggregator` implementations of the four heavy-hitter
/// protocols, so the server stack serves them exactly like a frequency
/// oracle.
///
/// The batch `HeavyHitterProtocol::Run` simulations execute a whole
/// protocol in one call; a serving deployment instead streams one
/// `WireReport` per user through `ShardedAggregator`/`EpochManager`. These
/// implementations split each protocol at the paper's natural seam:
///
///   - All public randomness (hashes, codes, group assignment) derives from
///     the config's `seed`, so clients and any number of server instances
///     reconstruct identical structures from the config alone.
///   - A user's sub-reports (e.g. Bitstogram's cell report + global
///     Hashtogram report) pack little-endian into the single 64-bit wire
///     payload; the fixed sub-widths come from the resolved config, and the
///     factory rejects configs whose packed width exceeds 64 bits.
///   - Per-user group/level assignment is a public function of the user
///     index (`Mix64(assign_seed ^ i)`), so the server re-derives routing at
///     aggregation time and reports may arrive in any order on any shard.
///   - `EstimateTopK` runs the protocol's decode (the helpers exported from
///     bitstogram.h / treehist.h / private_expander_sketch.h /
///     succinct_hist.h) against the aggregated state, with thresholds
///     computed from the actually aggregated report count.
///
/// Config grammars (defaults bracketed; auto fields resolve into config()):
///
///   bitstogram(domain_bits, eps, beta[1e-3], n_hint[65536], seed[1],
///              hash_range[auto], cohorts[auto], threshold_sigmas[4],
///              list_cap[64], fo_rows[auto], fo_table[auto])
///   treehist(domain_bits, eps, beta[1e-3], n_hint[65536], seed[1],
///            threshold_sigmas[3], frontier_cap[64], level_rows[auto],
///            level_table[auto], fo_rows[auto], fo_table[auto])
///   private_expander_sketch(domain_bits, eps, beta[1e-3], n_hint[65536],
///            seed[1], num_coords[auto], hash_range[32],
///            expander_degree[4], num_buckets[auto], bucket_mult[1],
///            threshold_sigmas[4], list_cap[auto], alpha[0.25],
///            fo_rows[auto], fo_table[auto])
///   succinct_hist(domain_bits, eps, beta[1e-3], seed[1],
///            threshold_sigmas[4], list_cap[256])

#ifndef LDPHH_PROTOCOLS_HH_SERVING_H_
#define LDPHH_PROTOCOLS_HH_SERVING_H_

#include <memory>

#include "src/protocols/aggregator.h"
#include "src/protocols/protocol_config.h"

namespace ldphh {

StatusOr<std::unique_ptr<Aggregator>> MakeBitstogramAggregator(
    const ProtocolConfig& config);
StatusOr<std::unique_ptr<Aggregator>> MakeTreeHistAggregator(
    const ProtocolConfig& config);
StatusOr<std::unique_ptr<Aggregator>> MakePesAggregator(
    const ProtocolConfig& config);
StatusOr<std::unique_ptr<Aggregator>> MakeSuccinctHistAggregator(
    const ProtocolConfig& config);

}  // namespace ldphh

#endif  // LDPHH_PROTOCOLS_HH_SERVING_H_
