#include "src/protocols/fo_serving.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/math_util.h"
#include "src/common/serde.h"
#include "src/freq/count_mean_sketch.h"
#include "src/freq/direct_encoding.h"
#include "src/freq/hadamard_response.h"
#include "src/freq/hashtogram.h"
#include "src/freq/olh.h"
#include "src/freq/unary_encoding.h"
#include "src/protocols/serving_util.h"

namespace ldphh {

namespace {

using serving::CheckItemWidth;
using serving::CheckReportShape;
using serving::TopKAccumulator;

// EstimateTopK enumerates the whole domain; past this it is a config error.
constexpr uint64_t kMaxScanDomain = uint64_t{1} << 24;

// ---------------------------------------------------- small-domain adapter --

/// Adapter over any mergeable SmallDomainFO. The underlying oracle is built
/// by the factory; Merge requires the peer to be the same adapter (enforced
/// by the config-equality check plus the FOST state envelope).
class SmallDomainFoAggregator final : public ConfiguredAggregator {
 public:
  SmallDomainFoAggregator(ProtocolConfig config,
                          std::unique_ptr<SmallDomainFO> fo, OlhFO* olh)
      : ConfiguredAggregator(std::move(config), fo->epsilon()),
        fo_(std::move(fo)),
        olh_(olh) {
    // Every built-in small-domain oracle emits fixed-width reports; probe
    // once with a throwaway generator to learn the width for validation.
    Rng probe(1);
    expected_bits_ = (olh_ != nullptr ? olh_->EncodeForUser(0, 0, probe)
                                      : fo_->Encode(0, probe))
                         .num_bits;
  }

  StatusOr<WireReport> Encode(uint64_t user_index, const DomainItem& value,
                              Rng& rng) const override {
    if (value.limbs[1] != 0 || value.limbs[2] != 0 || value.limbs[3] != 0 ||
        value.limbs[0] >= fo_->domain_size()) {
      return Status::InvalidArgument(Name() + ": value outside domain [0, " +
                                     std::to_string(fo_->domain_size()) + ")");
    }
    WireReport r;
    r.user_index = user_index;
    r.report = olh_ != nullptr
                   ? olh_->EncodeForUser(user_index, value.limbs[0], rng)
                   : fo_->Encode(value.limbs[0], rng);
    return r;
  }

  Status Aggregate(const WireReport& report) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("Aggregate"));
    LDPHH_RETURN_IF_ERROR(
        CheckReportShape(report.report, expected_bits_, Name()));
    fo_->AggregateIndexed(report.user_index, report.report);
    ++count_;
    return Status::OK();
  }

  Status Merge(Aggregator& other) override {
    LDPHH_RETURN_IF_ERROR(CheckMergeCompatible(other));
    auto* peer = dynamic_cast<SmallDomainFoAggregator*>(&other);
    if (peer == nullptr) {
      return Status::InvalidArgument(Name() + ": Merge with foreign aggregator");
    }
    LDPHH_RETURN_IF_ERROR(fo_->Merge(*peer->fo_));
    count_ += peer->count_;
    return Status::OK();
  }

  Status SerializeState(std::string* out) const override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("SerializeState"));
    PutU64(out, count_);
    return fo_->SerializeState(out);
  }

  Status RestoreState(std::string_view in) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("RestoreState"));
    ByteReader reader(in);
    uint64_t count = 0;
    LDPHH_RETURN_IF_ERROR(reader.ReadU64(&count));
    LDPHH_RETURN_IF_ERROR(fo_->RestoreState(in.substr(reader.position())));
    count_ = count;
    return Status::OK();
  }

  StatusOr<std::vector<HeavyHitterEntry>> EstimateTopK(size_t k) override {
    if (!finalized_) {
      fo_->Finalize();
      finalized_ = true;
    }
    TopKAccumulator top(k);
    for (uint64_t v = 0; v < fo_->domain_size(); ++v) {
      top.Add(DomainItem(v), fo_->Estimate(v));
    }
    return top.Take();
  }

 private:
  std::unique_ptr<SmallDomainFO> fo_;
  OlhFO* olh_;  ///< Non-null when the oracle needs indexed client encodes.
  int expected_bits_ = 0;
};

StatusOr<std::pair<uint64_t, double>> ParseDomainEps(
    const ProtocolConfig& config, uint64_t min_domain, uint64_t max_domain) {
  uint64_t domain = 0;
  double eps = 0.0;
  LDPHH_RETURN_IF_ERROR(config.GetUint("domain", &domain));
  LDPHH_RETURN_IF_ERROR(config.GetDouble("eps", &eps));
  if (domain < min_domain || domain > max_domain) {
    return Status::InvalidArgument(
        config.protocol() + ": domain must be in [" +
        std::to_string(min_domain) + ", " + std::to_string(max_domain) + "]");
  }
  // !(eps > 0) rather than eps <= 0: NaN must fail, not slip through; the
  // 64 cap keeps every exp(eps)-derived constant finite.
  if (!(eps > 0.0) || !(eps <= 64.0)) {
    return Status::InvalidArgument(config.protocol() +
                                   ": eps must be in (0, 64]");
  }
  return std::make_pair(domain, eps);
}

// --------------------------------------------------------- sketch adapters --

/// Adapter over the large-domain Hashtogram (Theorem 3.7).
class HashtogramAggregator final : public ConfiguredAggregator {
 public:
  HashtogramAggregator(ProtocolConfig config, double eps, int domain_bits,
                       Hashtogram ht)
      : ConfiguredAggregator(std::move(config), eps),
        domain_bits_(domain_bits),
        ht_(std::move(ht)) {}

  StatusOr<WireReport> Encode(uint64_t user_index, const DomainItem& value,
                              Rng& rng) const override {
    LDPHH_RETURN_IF_ERROR(CheckItemWidth(value, domain_bits_, Name()));
    WireReport r;
    r.user_index = user_index;
    r.report = ht_.Encode(user_index, value, rng);
    return r;
  }

  Status Aggregate(const WireReport& report) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("Aggregate"));
    LDPHH_RETURN_IF_ERROR(
        CheckReportShape(report.report, ht_.ReportBits(), Name()));
    ht_.Aggregate(report.user_index, report.report);
    ++count_;
    return Status::OK();
  }

  Status Merge(Aggregator& other) override {
    LDPHH_RETURN_IF_ERROR(CheckMergeCompatible(other));
    auto* peer = dynamic_cast<HashtogramAggregator*>(&other);
    if (peer == nullptr) {
      return Status::InvalidArgument(Name() + ": Merge with foreign aggregator");
    }
    LDPHH_RETURN_IF_ERROR(ht_.Merge(peer->ht_));
    count_ += peer->count_;
    return Status::OK();
  }

  Status SerializeState(std::string* out) const override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("SerializeState"));
    PutU64(out, count_);
    return ht_.SerializeState(out);
  }

  Status RestoreState(std::string_view in) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("RestoreState"));
    ByteReader reader(in);
    uint64_t count = 0;
    LDPHH_RETURN_IF_ERROR(reader.ReadU64(&count));
    LDPHH_RETURN_IF_ERROR(ht_.RestoreState(in.substr(reader.position())));
    count_ = count;
    return Status::OK();
  }

  StatusOr<std::vector<HeavyHitterEntry>> EstimateTopK(size_t k) override {
    if (!finalized_) {
      ht_.Finalize();
      finalized_ = true;
    }
    const uint64_t domain = uint64_t{1} << domain_bits_;
    TopKAccumulator top(k);
    for (uint64_t v = 0; v < domain; ++v) {
      const DomainItem item(v);
      top.Add(item, ht_.Estimate(item));
    }
    return top.Take();
  }

 private:
  int domain_bits_;
  Hashtogram ht_;
};

/// Adapter over the Apple-style CountMeanSketch. The wire report packs
/// [width one-hot bits][row index] little-endian; width is capped at 56 so
/// the packed report fits the 64-bit wire payload.
class CmsAggregator final : public ConfiguredAggregator {
 public:
  CmsAggregator(ProtocolConfig config, double eps, int domain_bits,
                int row_bits, CountMeanSketch cms)
      : ConfiguredAggregator(std::move(config), eps),
        domain_bits_(domain_bits),
        row_bits_(row_bits),
        cms_(std::move(cms)) {}

  int wire_bits() const { return static_cast<int>(cms_.width()) + row_bits_; }

  StatusOr<WireReport> Encode(uint64_t user_index, const DomainItem& value,
                              Rng& rng) const override {
    LDPHH_RETURN_IF_ERROR(CheckItemWidth(value, domain_bits_, Name()));
    const CmsReport raw = cms_.Encode(value, rng);
    WireReport r;
    r.user_index = user_index;
    r.report.bits = raw.bits[0] | (static_cast<uint64_t>(raw.row)
                                   << cms_.width());
    r.report.num_bits = wire_bits();
    return r;
  }

  Status Aggregate(const WireReport& report) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("Aggregate"));
    LDPHH_RETURN_IF_ERROR(CheckReportShape(report.report, wire_bits(), Name()));
    CmsReport raw;
    raw.row = static_cast<uint32_t>(report.report.bits >> cms_.width());
    if (raw.row >= static_cast<uint32_t>(cms_.rows())) {
      return Status::InvalidArgument(Name() + ": report row out of range");
    }
    raw.bits = {report.report.bits &
                ((uint64_t{1} << cms_.width()) - 1)};
    raw.num_bits = report.report.num_bits;
    cms_.Aggregate(raw);
    ++count_;
    return Status::OK();
  }

  Status Merge(Aggregator& other) override {
    LDPHH_RETURN_IF_ERROR(CheckMergeCompatible(other));
    auto* peer = dynamic_cast<CmsAggregator*>(&other);
    if (peer == nullptr) {
      return Status::InvalidArgument(Name() + ": Merge with foreign aggregator");
    }
    LDPHH_RETURN_IF_ERROR(cms_.Merge(peer->cms_));
    count_ += peer->count_;
    return Status::OK();
  }

  Status SerializeState(std::string* out) const override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("SerializeState"));
    PutU64(out, count_);
    return cms_.SerializeState(out);
  }

  Status RestoreState(std::string_view in) override {
    LDPHH_RETURN_IF_ERROR(CheckMutable("RestoreState"));
    ByteReader reader(in);
    uint64_t count = 0;
    LDPHH_RETURN_IF_ERROR(reader.ReadU64(&count));
    LDPHH_RETURN_IF_ERROR(cms_.RestoreState(in.substr(reader.position())));
    count_ = count;
    return Status::OK();
  }

  StatusOr<std::vector<HeavyHitterEntry>> EstimateTopK(size_t k) override {
    if (!finalized_) {
      cms_.Finalize();
      finalized_ = true;
    }
    const uint64_t domain = uint64_t{1} << domain_bits_;
    TopKAccumulator top(k);
    for (uint64_t v = 0; v < domain; ++v) {
      const DomainItem item(v);
      top.Add(item, cms_.Estimate(item));
    }
    return top.Take();
  }

 private:
  int domain_bits_;
  int row_bits_;
  CountMeanSketch cms_;
};

/// Shared parse of the sketch-family keys (domain_bits / eps / n_hint /
/// seed); domain_bits bounds the EstimateTopK scan.
struct SketchCommon {
  int domain_bits = 0;
  double eps = 0.0;
  uint64_t n_hint = 0;
  uint64_t seed = 0;
};

StatusOr<SketchCommon> ParseSketchCommon(const ProtocolConfig& config) {
  SketchCommon c;
  uint64_t domain_bits = 0;
  LDPHH_RETURN_IF_ERROR(config.GetUint("domain_bits", &domain_bits));
  LDPHH_RETURN_IF_ERROR(config.GetDouble("eps", &c.eps));
  if (domain_bits < 4 || domain_bits > 24) {
    return Status::InvalidArgument(
        config.protocol() +
        ": domain_bits must be in [4, 24] (EstimateTopK scans the domain)");
  }
  if (!(c.eps > 0.0) || !(c.eps <= 64.0)) {
    return Status::InvalidArgument(config.protocol() +
                                   ": eps must be in (0, 64]");
  }
  c.domain_bits = static_cast<int>(domain_bits);
  LDPHH_RETURN_IF_ERROR(config.GetUintIn("n_hint", uint64_t{1} << 16, 1,
                                         uint64_t{1} << 40, &c.n_hint));
  c.seed = config.GetUintOr("seed", 1);
  return c;
}

}  // namespace

// ------------------------------------------------------------- factories --

StatusOr<std::unique_ptr<Aggregator>> MakeKRrAggregator(
    const ProtocolConfig& config) {
  LDPHH_RETURN_IF_ERROR(config.ExpectKeys({"domain", "eps"}));
  auto parsed = ParseDomainEps(config, 2, kMaxScanDomain);
  LDPHH_RETURN_IF_ERROR(parsed.status());
  const auto [domain, eps] = parsed.value();
  ProtocolConfig resolved(config.protocol());
  resolved.SetUint("domain", domain).SetDouble("eps", eps);
  return std::unique_ptr<Aggregator>(new SmallDomainFoAggregator(
      std::move(resolved), std::make_unique<DirectEncodingFO>(domain, eps),
      nullptr));
}

StatusOr<std::unique_ptr<Aggregator>> MakeRapporUnaryAggregator(
    const ProtocolConfig& config) {
  LDPHH_RETURN_IF_ERROR(config.ExpectKeys({"domain", "eps"}));
  auto parsed = ParseDomainEps(config, 2, 56);
  LDPHH_RETURN_IF_ERROR(parsed.status());
  const auto [domain, eps] = parsed.value();
  ProtocolConfig resolved(config.protocol());
  resolved.SetUint("domain", domain).SetDouble("eps", eps);
  return std::unique_ptr<Aggregator>(new SmallDomainFoAggregator(
      std::move(resolved), std::make_unique<UnaryEncodingFO>(domain, eps),
      nullptr));
}

StatusOr<std::unique_ptr<Aggregator>> MakeOlhAggregator(
    const ProtocolConfig& config) {
  LDPHH_RETURN_IF_ERROR(config.ExpectKeys({"domain", "eps", "seed"}));
  auto parsed = ParseDomainEps(config, 2, kMaxScanDomain);
  LDPHH_RETURN_IF_ERROR(parsed.status());
  const auto [domain, eps] = parsed.value();
  const uint64_t seed = config.GetUintOr("seed", 1);
  ProtocolConfig resolved(config.protocol());
  resolved.SetUint("domain", domain).SetDouble("eps", eps).SetUint("seed",
                                                                   seed);
  auto olh = std::make_unique<OlhFO>(domain, eps, seed);
  OlhFO* raw = olh.get();
  return std::unique_ptr<Aggregator>(
      new SmallDomainFoAggregator(std::move(resolved), std::move(olh), raw));
}

StatusOr<std::unique_ptr<Aggregator>> MakeHadamardResponseAggregator(
    const ProtocolConfig& config) {
  LDPHH_RETURN_IF_ERROR(config.ExpectKeys({"domain", "eps"}));
  auto parsed = ParseDomainEps(config, 1, kMaxScanDomain);
  LDPHH_RETURN_IF_ERROR(parsed.status());
  const auto [domain, eps] = parsed.value();
  ProtocolConfig resolved(config.protocol());
  resolved.SetUint("domain", domain).SetDouble("eps", eps);
  return std::unique_ptr<Aggregator>(new SmallDomainFoAggregator(
      std::move(resolved), std::make_unique<HadamardResponseFO>(domain, eps),
      nullptr));
}

StatusOr<std::unique_ptr<Aggregator>> MakeCountMeanSketchAggregator(
    const ProtocolConfig& config) {
  LDPHH_RETURN_IF_ERROR(config.ExpectKeys(
      {"domain_bits", "eps", "n_hint", "seed", "rows", "width"}));
  auto common_or = ParseSketchCommon(config);
  LDPHH_RETURN_IF_ERROR(common_or.status());
  const SketchCommon c = common_or.value();
  CmsParams params;
  uint64_t rows = 0;
  LDPHH_RETURN_IF_ERROR(config.GetUintIn("rows", 16, 1, 4096, &rows));
  params.rows = static_cast<int>(rows);
  // The wire payload is 64 bits, so the packed report (width one-hot bits
  // plus the row index) caps the sketch width at 56 — the auto rule from
  // count_mean_sketch.h clipped to the wire.
  LDPHH_RETURN_IF_ERROR(config.GetUintIn("width", 0, 0, 56, &params.width));
  if (params.width == 0) {
    params.width = std::min<uint64_t>(
        32, NextPow2(static_cast<uint64_t>(
                2.0 * std::sqrt(static_cast<double>(c.n_hint)))));
  }
  const int row_bits =
      CeilLog2(NextPow2(static_cast<uint64_t>(params.rows)));
  // The 56 cap (not 64) also keeps every width shift in Encode/Aggregate
  // strictly below 64 — width=64 with rows=1 would be shift UB.
  if (params.width < 2 || params.width > 56 ||
      params.width + static_cast<uint64_t>(row_bits) > 64) {
    return Status::InvalidArgument(
        "count_mean_sketch: width + row bits must fit 64 wire bits (width in "
        "[2, 56])");
  }
  CountMeanSketch cms(c.n_hint, c.eps, params, c.seed);
  ProtocolConfig resolved(config.protocol());
  resolved.SetUint("domain_bits", static_cast<uint64_t>(c.domain_bits))
      .SetDouble("eps", c.eps)
      .SetUint("n_hint", c.n_hint)
      .SetUint("seed", c.seed)
      .SetUint("rows", static_cast<uint64_t>(cms.rows()))
      .SetUint("width", cms.width());
  return std::unique_ptr<Aggregator>(new CmsAggregator(
      std::move(resolved), c.eps, c.domain_bits, row_bits, std::move(cms)));
}

StatusOr<std::unique_ptr<Aggregator>> MakeHashtogramAggregator(
    const ProtocolConfig& config) {
  LDPHH_RETURN_IF_ERROR(config.ExpectKeys(
      {"domain_bits", "eps", "n_hint", "seed", "rows", "table_size", "beta"}));
  auto common_or = ParseSketchCommon(config);
  LDPHH_RETURN_IF_ERROR(common_or.status());
  const SketchCommon c = common_or.value();
  HashtogramParams params;
  uint64_t rows = 0;
  LDPHH_RETURN_IF_ERROR(config.GetUintIn("rows", 0, 0, 4096, &rows));
  params.rows = static_cast<int>(rows);
  LDPHH_RETURN_IF_ERROR(config.GetUintIn("table_size", 0, 0,
                                         uint64_t{1} << 24,
                                         &params.table_size));
  params.beta = config.GetDoubleOr("beta", 1e-3);
  if (!(params.beta > 0.0 && params.beta < 1.0)) {
    return Status::InvalidArgument("hashtogram: beta must be in (0, 1)");
  }
  Hashtogram ht(c.n_hint, c.eps, params, c.seed);
  ProtocolConfig resolved(config.protocol());
  resolved.SetUint("domain_bits", static_cast<uint64_t>(c.domain_bits))
      .SetDouble("eps", c.eps)
      .SetUint("n_hint", c.n_hint)
      .SetUint("seed", c.seed)
      .SetUint("rows", static_cast<uint64_t>(ht.rows()))
      .SetUint("table_size", ht.table_size())
      .SetDouble("beta", params.beta);
  return std::unique_ptr<Aggregator>(new HashtogramAggregator(
      std::move(resolved), c.eps, c.domain_bits, std::move(ht)));
}

}  // namespace ldphh
