/// \file freq_scan.h
/// \brief The n > |X| regime: apply a frequency oracle to every domain
/// element (the remark before Theorem 3.13).
///
/// When the domain is small, heavy hitters reduce to "query the oracle
/// everywhere": this protocol runs the Theorem 3.8 Hadamard-response oracle
/// over the full domain and returns everything above threshold. It is both
/// the paper's complementary-case protocol and the natural correctness
/// reference for the other protocols on small domains.

#ifndef LDPHH_PROTOCOLS_FREQ_SCAN_H_
#define LDPHH_PROTOCOLS_FREQ_SCAN_H_

#include <cstdint>

#include "src/protocols/heavy_hitters.h"

namespace ldphh {

/// Tuning parameters for the scan protocol.
struct FreqScanParams {
  int domain_bits = 16;  ///< Server memory/time is 2^domain_bits: keep <= 24.
  double epsilon = 2.0;
  double beta = 1e-3;
  double threshold_sigmas = 4.0;
  int list_cap = 1024;
};

/// \brief Frequency-oracle scan protocol.
class FreqScan final : public HeavyHitterProtocol {
 public:
  static StatusOr<FreqScan> Create(const FreqScanParams& params);

  StatusOr<HeavyHitterResult> Run(const std::vector<DomainItem>& database,
                                  uint64_t seed) override;
  std::string Name() const override { return "freq-scan"; }
  double Epsilon() const override { return params_.epsilon; }

  /// Threshold ~ threshold_sigmas c_eps sqrt(n).
  double DetectionThreshold(uint64_t n) const;

 private:
  explicit FreqScan(const FreqScanParams& params) : params_(params) {}

  FreqScanParams params_;
};

}  // namespace ldphh

#endif  // LDPHH_PROTOCOLS_FREQ_SCAN_H_
