/// \file bitstogram.h
/// \brief The Bassily-Nissim-Stemmer-Thakurta 2017 heavy-hitters baseline
/// ("Bitstogram", Theorem 3.3 / Section 3.1.1 of the paper).
///
/// One public hash h_c : X -> [Yb] per cohort; users decode the raw bits of
/// the item per hash value by majority (no error-correcting code, no
/// expander). A single hash fails a heavy hitter when another input
/// collides, so the construction amplifies with rho = O(log(1/beta))
/// independent cohorts — which costs the extra sqrt(log(1/beta)) factor in
/// the error that PrivateExpanderSketch removes. This implementation shares
/// the frequency-oracle machinery with PES so the F1 comparison isolates
/// exactly that reduction difference.

#ifndef LDPHH_PROTOCOLS_BITSTOGRAM_H_
#define LDPHH_PROTOCOLS_BITSTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/freq/hadamard_response.h"
#include "src/freq/hashtogram.h"
#include "src/protocols/heavy_hitters.h"

namespace ldphh {

/// Tuning parameters for Bitstogram.
struct BitstogramParams {
  int domain_bits = 64;
  double epsilon = 2.0;
  double beta = 1e-3;

  int hash_range = 0;   ///< Yb; 0 = auto next_pow2(2 sqrt(n)).
  int cohorts = 0;      ///< rho; 0 = auto max(1, ceil(log2(1/beta))).
  double threshold_sigmas = 4.0;
  int list_cap_per_cohort = 64;

  /// Server aggregation shards (>= 1). With S > 1 the server aggregates
  /// reports on S threads over per-shard oracle replicas and merges them;
  /// the result is bit-for-bit identical to the single-threaded run.
  int num_shards = 1;

  HashtogramParams global_fo;
};

/// \brief The [3] baseline protocol.
class Bitstogram final : public HeavyHitterProtocol {
 public:
  static StatusOr<Bitstogram> Create(const BitstogramParams& params);

  StatusOr<HeavyHitterResult> Run(const std::vector<DomainItem>& database,
                                  uint64_t seed) override;
  std::string Name() const override { return "bitstogram"; }
  double Epsilon() const override { return params_.epsilon; }

  /// Detection threshold analogue of PES::DetectionThreshold:
  /// ~4.5 c_{eps/2} sqrt(n * rho * D) — note the sqrt(rho) = sqrt(log 1/beta)
  /// factor the paper's Theorem 3.3 charges.
  double DetectionThreshold(uint64_t n) const;

  int cohorts() const { return params_.cohorts; }
  const BitstogramParams& params() const { return params_; }

 private:
  explicit Bitstogram(const BitstogramParams& params) : params_(params) {}

  BitstogramParams params_;
};

/// Candidate reconstruction (the server decode step), shared by Run and the
/// streaming serving aggregator (src/protocols/hh_serving.h): per cohort,
/// per hash value, majority bit at every position; keep hash values whose
/// support count clears \p tau and whose reconstructed item hashes back to
/// its own cell. \p cell_fo must be finalized, laid out
/// [cohort * domain_bits + bit_position]. Candidates return in recovery
/// order, deduplicated.
std::vector<DomainItem> BitstogramRecoverCandidates(
    const std::vector<HadamardResponseFO>& cell_fo,
    const HashFamily& cohort_hash, int cohorts, int domain_bits,
    int hash_range, int list_cap_per_cohort, double tau);

}  // namespace ldphh

#endif  // LDPHH_PROTOCOLS_BITSTOGRAM_H_
