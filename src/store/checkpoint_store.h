/// \file checkpoint_store.h
/// \brief Durable, compacting store of checkpoint blobs keyed by u64.
///
/// The storage engine under the epoch layer (src/server/epoch_manager.h):
/// a directory of numbered segment files of CRC-guarded records (the
/// checkpoint_log format) governed by a MANIFEST, in the leveldb idiom
/// scaled down to whole-blob values:
///
///   <dir>/MANIFEST       one kStoreManifest record: format version,
///                        install sequence, incarnation id, next segment
///                        number, the active segment, and the live list
///   <dir>/NNNNNN.seg     segment: a run of kStoreEntry / kStoreTombstone
///                        records, each carrying (key, sequence, blob)
///
/// The file names, MANIFEST codec, and segment replay live in
/// store_format.h, shared with the read-only follower (replica_store.h)
/// that tails a live store directory by polling its MANIFEST.
///
/// Writes go to the single *active* segment; when it exceeds
/// `segment_max_bytes` it is sealed and a fresh active segment is opened.
/// A background (or foreground) compaction merges every sealed segment
/// into one consolidated snapshot segment — last write per key wins, by
/// global sequence number; deleted keys vanish — then atomically installs
/// a MANIFEST listing the new segment set and deletes the superseded files.
///
/// Crash-safety invariants (docs/storage.md derives them in full):
///   I1. The MANIFEST is only ever replaced atomically: written complete to
///       MANIFEST.tmp, synced, then rename(2)d over MANIFEST with the
///       parent directory synced after the rename.
///   I2. An *active* segment is listed in the MANIFEST before its first
///       record is written; a *consolidated* segment is written complete
///       before the MANIFEST listing it is installed.
///   I3. Therefore any .seg file not listed in the current MANIFEST is
///       garbage (an uninstalled compaction output, or a compaction input
///       whose deletion did not finish) and is deleted at Open.
///   I4. Only the active segment may have a damaged tail (a crash
///       mid-append); Open truncates it at the last clean record and never
///       appends after recovered bytes (the recovered segment is sealed and
///       a fresh active segment rolled). Damage in any other live segment
///       is real corruption and fails Open.
///
/// Durability (docs/storage.md has the full derivation): every byte goes
/// through the file layer (src/common/file.h) and `CheckpointStoreOptions::
/// sync_mode` picks the contract. Under kFull (default) / kData an acked
/// Put/Delete is power-loss durable: each append is fsync/fdatasync'd, a
/// created segment's directory entry is synced before its first record is
/// acknowledged, the MANIFEST temp file is synced before the rename and the
/// parent directory after it, and a consolidated compaction segment is
/// fully synced (data + entry) before the MANIFEST naming it installs.
/// Under kNone writes only reach the OS (fflush-grade): crash-of-process
/// safe, not power-loss safe — the pre-fsync contract, kept as a knob
/// because an fsync per Put is the price of the guarantee (bench_store
/// measures it).

#ifndef LDPHH_STORE_CHECKPOINT_STORE_H_
#define LDPHH_STORE_CHECKPOINT_STORE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/file.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/statusz.h"
#include "src/server/checkpoint_log.h"
#include "src/store/store_format.h"

namespace ldphh {

/// Tuning for CheckpointStore.
struct CheckpointStoreOptions {
  /// Seal the active segment once it exceeds this many bytes.
  size_t segment_max_bytes = 1 << 20;
  /// Background compaction runs when this many sealed segments are live.
  /// Foreground Compact() ignores the trigger.
  int compaction_trigger = 4;
  /// Spawn the background compaction thread. Off, compaction only happens
  /// via explicit Compact() calls.
  bool background_compaction = true;
  /// How far an acknowledged write is pushed toward the platter before
  /// Put/Delete/CloseEpoch return. kFull/kData: power-loss durable (fsync /
  /// fdatasync plus the directory syncs). kNone: flushed to the OS only —
  /// process-crash safe, the pre-fsync contract.
  SyncMode sync_mode = SyncMode::kFull;
  /// File layer to write through; null = FileSystem::Default() (POSIX).
  /// Tests inject a FaultInjectingFileSystem to simulate power loss.
  FileSystem* file_system = nullptr;
  /// Group commit (the leveldb writer-queue idiom): concurrent Put/Delete
  /// callers enqueue their intents; the queue-front writer becomes the
  /// *leader*, coalesces the queue into one log append + one sync, and
  /// acknowledges the whole group — so N concurrent acknowledged-durable
  /// writes cost ~1 fsync instead of N. Every writer still returns only
  /// after its own record is durable per sync_mode, and a failed group
  /// sync surfaces to every member. Off (default), each write appends and
  /// syncs by itself — the original single-writer discipline, bit for bit.
  bool group_commit = false;
  /// A forming group stops absorbing queued writers past either bound (the
  /// member that crosses a bound still commits whole; writers left behind
  /// lead the next group).
  size_t group_max_records = 128;
  size_t group_max_bytes = 4 << 20;
};

/// One write intent for CheckpointStore::Apply — a Put (key, blob) or a
/// Delete (key). The referenced blob must outlive the Apply call.
struct StoreWrite {
  bool is_delete = false;
  uint64_t key = 0;
  std::string_view blob;  ///< Ignored for deletes.
};

/// Counters for tests, benchmarks, and operators — a thin consistent
/// snapshot of this store's registry instruments (Stats() assembles it).
struct CheckpointStoreStats {
  uint64_t live_segments = 0;    ///< Segments in the current MANIFEST.
  uint64_t sealed_segments = 0;  ///< Live segments no longer written to.
  uint64_t entries = 0;          ///< Distinct live keys.
  uint64_t compactions = 0;      ///< Compactions completed since Open.
  uint64_t manifest_installs = 0;///< MANIFEST replacements since Open.
  uint64_t recovered_records = 0;///< Records replayed by Open.
  uint64_t recovered_bytes = 0;  ///< Segment bytes scanned by Open.
  uint64_t dropped_tail_records = 0;  ///< Torn/corrupt active-tail records
                                      ///< discarded by Open.
  uint64_t manifest_sequence = 0;///< Install generation of the current
                                 ///< MANIFEST (what a replica tails).
  uint64_t group_commits = 0;    ///< Groups committed (≈ write-path syncs
                                 ///< issued) since Open, group_commit on.
  uint64_t group_commit_writes = 0;  ///< Write intents acknowledged through
                                     ///< the group-commit lane.
};

/// \brief The durable keyed blob store.
///
/// Thread-safe: Put/Delete/Get/Keys/Compact may be called concurrently.
/// Blobs are cached in memory (they are the epoch working set the windowed
/// queries read); the segment files are the durable copy replayed at Open.
class CheckpointStore {
 public:
  /// Crash-injection points for the compaction test suite: when set,
  /// Compact() abandons the pass right after the named phase exactly as a
  /// kill would — files are left as-is and the in-memory store must be
  /// discarded (reopen the directory to observe recovery).
  enum class CompactionCrashPoint {
    kNone = 0,
    kAfterConsolidatedSegment,  ///< Output fully written; MANIFEST untouched.
    kAfterTempManifest,         ///< MANIFEST.tmp written; rename not done.
    kAfterManifestInstall,      ///< New MANIFEST live; inputs not yet deleted.
  };

  /// Crash-injection points for the group-commit power-loss matrix: when
  /// armed (one-shot), the next group leader abandons the commit right
  /// after the named phase exactly as a power cut would — the log is left
  /// with whatever bytes reached it, every queued writer (this group and
  /// any writers behind it) gets kAborted, further group writes fail, and
  /// the in-memory store must be discarded (reopen to observe recovery).
  enum class GroupCrashPoint {
    kNone = 0,
    kAfterEnqueue,          ///< Group formed; nothing appended.
    kAfterPartialAppend,    ///< Roughly half the group's bytes appended.
    kAfterAppendPreSync,    ///< Whole group appended; sync not issued.
    kAfterSyncPreNotify,    ///< Group durable; no member ever acknowledged.
  };

  /// Opens (creating if needed) the store at \p dir and recovers its state
  /// from the MANIFEST and live segments. Fails on real corruption, never
  /// on the debris of a crash.
  static StatusOr<std::unique_ptr<CheckpointStore>> Open(
      const std::string& dir, const CheckpointStoreOptions& options);

  ~CheckpointStore();
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Stores \p blob under \p key (replacing any previous value); flushed to
  /// the OS before returning. May seal the active segment.
  Status Put(uint64_t key, std::string_view blob);

  /// Removes \p key (a durable tombstone; compaction reclaims the space).
  /// Deleting an absent key is OK.
  Status Delete(uint64_t key);

  /// Applies every intent in \p writes, in order, and returns only after
  /// all of them are durable per sync_mode. With group_commit on, the
  /// whole batch rides the group-commit lane as one member — one append +
  /// one sync for the batch, possibly shared with concurrent writers (the
  /// epoch layer commits an epoch blob and its clock record this way).
  /// With group_commit off it degrades to sequential Put/Delete semantics:
  /// one append + one sync per intent, bit-for-bit the single-writer path.
  Status Apply(const std::vector<StoreWrite>& writes);

  /// Fetches the blob stored under \p key; kOutOfRange if absent.
  Status Get(uint64_t key, std::string* blob) const;

  bool Contains(uint64_t key) const;

  /// All live keys, ascending.
  std::vector<uint64_t> Keys() const;

  /// Merges every sealed segment into one consolidated snapshot segment and
  /// deletes the inputs. No-op with fewer than two sealed segments (unless
  /// they hold superseded or deleted data worth dropping).
  Status Compact();

  /// Blocks until no compaction is running and, if the background thread is
  /// enabled, the trigger condition is not met. For tests and benchmarks.
  Status WaitForCompaction();

  CheckpointStoreStats Stats() const;

  const std::string& dir() const { return dir_; }

  /// Arms the crash injection for the next Compact() pass (test-only).
  void set_crash_point_for_testing(CompactionCrashPoint p) {
    crash_point_.store(p);
  }

  /// Arms the crash injection for the next group commit (test-only;
  /// one-shot — the leader that consumes it simulates the kill).
  void set_group_crash_point_for_testing(GroupCrashPoint p) {
    group_crash_point_.store(p);
  }

  /// Segment file name for segment number \p n ("NNNNNN.seg").
  static std::string SegmentFileName(uint64_t n) {
    return StoreSegmentFileName(n);
  }

 private:
  CheckpointStore(std::string dir, CheckpointStoreOptions options);

  /// Runs at Open before any other thread exists; takes mu_ anyway so the
  /// guarded-member writes stay inside the analyzed discipline.
  Status Recover() REQUIRES(mu_);
  Status ReplaySegment(uint64_t segment, bool is_active,
                       std::map<uint64_t, StoreSegmentEntry>* entries,
                       std::map<uint64_t, uint64_t>* tombstones);
  /// Writes the MANIFEST describing the given state to MANIFEST.tmp and
  /// renames it into place. Caller holds mu_. With \p abandon_before_rename
  /// the tmp file is left uninstalled — the kAfterTempManifest kill.
  Status InstallManifestLocked(const std::set<uint64_t>& live,
                               uint64_t next_segment, uint64_t active_segment,
                               bool abandon_before_rename = false)
      REQUIRES(mu_);
  /// Seals the active segment and opens a fresh one. Caller holds mu_.
  Status RollActiveLocked() REQUIRES(mu_);
  Status AppendRecordLocked(CheckpointRecordType type, uint64_t key,
                            std::string_view blob, obs::Span& span)
      REQUIRES(mu_);
  /// One writer parked in the group-commit queue: its intents, their
  /// pre-computed on-disk size, and the condition it sleeps on until the
  /// group leader reports the outcome.
  struct PendingWrite {
    PendingWrite(Mutex* mu, const StoreWrite* w, size_t n, size_t b)
        : cv(mu), writes(w), count(n), bytes(b) {}
    CondVar cv;
    const StoreWrite* writes;
    size_t count;
    size_t bytes;  ///< Encoded size (headers included) of all intents.
    Status status;
    bool done = false;
  };

  /// The group-commit lane: enqueues \p writes, then either waits for a
  /// leader to commit them (follower) or, on reaching the queue front,
  /// leads the commit itself. Returns the writer's durable outcome.
  Status GroupWrite(const StoreWrite* writes, size_t count, obs::Span& span);
  /// Called by the queue-front writer with mu_ held: coalesces the queue
  /// head into one group, appends + syncs it with mu_ released (the
  /// queue-front position is the exclusive-writer token while unlocked),
  /// applies the group in memory, and wakes every member.
  Status LeadGroupCommit(PendingWrite* self, obs::Span& span) REQUIRES(mu_);
  /// Wakes the background compactor if the sealed-segment trigger is met.
  /// The group-commit paths call it after releasing mu_; the single-writer
  /// paths fold the check into their existing critical section instead.
  void MaybeSignalCompaction();

  /// Latches \p status as the store's write health: an error makes
  /// /healthz fail until a later write succeeds (last write wins, so the
  /// store self-heals when the fault clears).
  void RecordWriteHealth(const Status& status);
  /// What the registered health check reports.
  Status WriteHealth() const;
  Status CompactPass(bool respect_trigger);
  void BackgroundLoop();
  int SealedCountLocked() const REQUIRES(mu_) {
    return static_cast<int>(live_.size()) - 1;  // All live but the active.
  }
  std::string PathOf(uint64_t segment) const;
  /// Directory-entry sync, skipped under SyncMode::kNone.
  Status SyncDirIfDurable();

  const std::string dir_;
  const CheckpointStoreOptions options_;
  FileSystem* const fs_;

  mutable Mutex mu_;
  std::map<uint64_t, StoreSegmentEntry> entries_ GUARDED_BY(mu_);
  /// Live segment numbers (incl. active).
  std::set<uint64_t> live_ GUARDED_BY(mu_);
  uint64_t active_segment_ GUARDED_BY(mu_) = 0;
  size_t active_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t next_segment_ GUARDED_BY(mu_) = 1;
  uint64_t next_sequence_ GUARDED_BY(mu_) = 1;
  uint64_t manifest_sequence_ GUARDED_BY(mu_) = 0;
  /// Random id of this Open, stamped into every MANIFEST this instance
  /// installs (see StoreManifest::incarnation). The recovery-time install
  /// puts it on disk before any record is acknowledged.
  uint64_t incarnation_ = 0;
  CheckpointWriter active_writer_ GUARDED_BY(mu_);

  /// Writers parked in the group-commit lane, in arrival order; the front
  /// writer is (or becomes) the leader. Entries live on their owners'
  /// stacks — a writer only leaves GroupWrite after done is set.
  std::deque<PendingWrite*> group_queue_ GUARDED_BY(mu_);
  /// Records in the most recently led group — the oscillation-damping
  /// hint in LeadGroupCommit (yield once when the queue is thinner than
  /// the group that just committed).
  size_t last_group_records_ GUARDED_BY(mu_) = 1;
  /// Set by a simulated group-commit crash: the in-memory store no longer
  /// matches the log, so every later group write fails until reopen.
  bool group_crashed_ GUARDED_BY(mu_) = false;

  // Registry instruments; CheckpointStoreStats snapshots them. Counters are
  // per-instance (since Open), gauges track the current on-disk shape.
  std::shared_ptr<obs::Counter> puts_;
  std::shared_ptr<obs::Counter> deletes_;
  std::shared_ptr<obs::Counter> appended_bytes_;
  std::shared_ptr<obs::Counter> compactions_;
  std::shared_ptr<obs::Counter> manifest_installs_;
  std::shared_ptr<obs::Counter> recovered_records_;
  std::shared_ptr<obs::Counter> recovered_bytes_;
  std::shared_ptr<obs::Counter> dropped_tail_records_;
  std::shared_ptr<obs::Counter> group_commits_;
  std::shared_ptr<obs::Counter> group_follower_writes_;
  std::shared_ptr<obs::Counter> group_commit_writes_;
  std::shared_ptr<obs::Histogram> group_size_;
  std::shared_ptr<obs::Histogram> put_duration_ns_;
  std::shared_ptr<obs::Histogram> compaction_duration_ns_;
  std::shared_ptr<obs::Gauge> live_segments_gauge_;
  std::shared_ptr<obs::Gauge> sealed_segments_gauge_;
  std::shared_ptr<obs::Gauge> entries_gauge_;
  std::shared_ptr<obs::Gauge> manifest_sequence_gauge_;

  Mutex compaction_mu_;     ///< Serializes compaction passes.
  CondVar work_cv_{&mu_};   ///< Wakes the background thread.
  CondVar idle_cv_{&mu_};   ///< Signals WaitForCompaction.
  bool compacting_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread compactor_;

  std::atomic<CompactionCrashPoint> crash_point_{CompactionCrashPoint::kNone};
  std::atomic<GroupCrashPoint> group_crash_point_{GroupCrashPoint::kNone};

  /// Slow-span families for the write path (served at /spanz).
  std::shared_ptr<obs::SpanFamily> put_spans_;
  std::shared_ptr<obs::SpanFamily> delete_spans_;

  /// Write-health latch: set by the first failing Put/Delete, cleared by
  /// the next succeeding one. The atomic keeps the registered check to one
  /// relaxed load in the healthy steady state.
  std::atomic<bool> has_health_error_{false};
  mutable Mutex health_mu_;
  Status health_error_ GUARDED_BY(health_mu_);

  /// Declared last: unregister (stopping admin-plane callbacks into this
  /// object) before any member the callbacks read is destroyed.
  obs::HealthRegistry::Registration health_;
  obs::StatuszRegistry::Registration statusz_;
};

}  // namespace ldphh

#endif  // LDPHH_STORE_CHECKPOINT_STORE_H_
