/// \file store_format.h
/// \brief The on-disk format shared by the store's writer and its replicas.
///
/// PR 2/3 built CheckpointStore around a MANIFEST + numbered segment files
/// of CRC-guarded records; a read-only replica (replica_store.h) reads the
/// same directory while the primary writes it. Everything both sides must
/// agree on byte-for-byte lives here:
///
///   - the record tags the store writes into segments and the MANIFEST,
///   - the file names ("MANIFEST", "NNNNNN.seg", the ".tmp" install suffix),
///   - the MANIFEST payload codec (`StoreManifest` encode/read), and
///   - segment replay (`ReplayStoreSegment`): last-write-wins by global
///     sequence number, tombstones collected separately, with the
///     active-segment tolerance for a torn tail.
///
/// Every reader-side entry point takes a `ReadableFileSystem` — the replica
/// holds only the read slice of the file layer, so these functions cannot
/// grow a write dependency by accident.

#ifndef LDPHH_STORE_STORE_FORMAT_H_
#define LDPHH_STORE_STORE_FORMAT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "src/common/file.h"
#include "src/common/status.h"
#include "src/server/checkpoint_log.h"

namespace ldphh {

/// Record tags the store writes into its segment and MANIFEST files, in the
/// checkpoint_log "first tag free for other subsystems" range.
inline constexpr CheckpointRecordType kStoreEntryRecord =
    static_cast<CheckpointRecordType>(128);
inline constexpr CheckpointRecordType kStoreTombstoneRecord =
    static_cast<CheckpointRecordType>(129);
inline constexpr CheckpointRecordType kStoreManifestRecord =
    static_cast<CheckpointRecordType>(130);

/// MANIFEST payload format version. v2 added the incarnation id.
inline constexpr uint16_t kStoreFormatVersion = 2;

/// File names inside a store directory.
inline constexpr char kStoreManifestName[] = "MANIFEST";
inline constexpr char kStoreTempSuffix[] = ".tmp";

/// Segment file name for segment number \p n ("NNNNNN.seg").
std::string StoreSegmentFileName(uint64_t n);

/// Parses "NNNNNN.seg" into a segment number; returns false for anything
/// else (foreign files in the directory are left alone).
bool ParseStoreSegmentFileName(const std::string& name, uint64_t* number);

/// \brief The decoded MANIFEST: one kStoreManifestRecord naming the live
/// segment set. `sequence` is the install generation — it increments on
/// every install, so a replica can tell "nothing changed" from "changed
/// and changed back" and can order the manifests it observes.
/// `incarnation` is a random id drawn at every store Open: a power loss
/// can roll back an installed-but-not-yet-directory-synced MANIFEST, after
/// which recovery re-issues the *same* sequence number (and may reallocate
/// swept orphan segment numbers) with different content — only the
/// incarnation change tells a replica that its cached world is void.
struct StoreManifest {
  uint64_t sequence = 0;        ///< Install generation (monotonic within
                                ///< one incarnation).
  uint64_t incarnation = 0;     ///< Random id of the writing store's Open.
  uint64_t next_segment = 1;    ///< Next segment number to allocate.
  uint64_t active_segment = 0;  ///< The segment receiving appends.
  std::set<uint64_t> live;      ///< Live segment numbers (incl. active).
};

/// Encodes \p manifest into the kStoreManifestRecord payload.
std::string EncodeStoreManifest(const StoreManifest& manifest);

/// Reads and validates the MANIFEST at \p path: record tag, format version,
/// and internal consistency (the active segment is listed, next_segment is
/// past every live segment). Thanks to the tmp-sync+rename+dir-sync install
/// protocol a reader can never observe a torn MANIFEST, so any failure here
/// is real corruption (or a missing file), never a benign race.
Status ReadStoreManifest(ReadableFileSystem* fs, const std::string& path,
                         StoreManifest* manifest);

/// \brief One live key's winning record during replay.
struct StoreSegmentEntry {
  uint64_t sequence = 0;  ///< Global write sequence; highest wins.
  uint64_t segment = 0;   ///< Segment holding the winning record.
  std::string blob;
};

/// Counters from one segment replay.
struct StoreSegmentReplayResult {
  uint64_t records = 0;             ///< Clean records decoded.
  uint64_t clean_end = 0;           ///< Byte offset after the last clean record.
  uint64_t dropped_tail_records = 0;///< Complete-but-corrupt records skipped at
                                    ///< the tail (only with a tolerated tail).
};

/// Replays the segment file at \p path into \p entries / \p tombstones,
/// last write per key winning by sequence number; \p segment stamps each
/// winning entry's origin. With \p tolerate_damaged_tail (the active
/// segment, which a crash — or a concurrent reader catching the writer
/// mid-append — may leave with a torn final record) a complete-but-corrupt
/// record ends the replay at the last clean boundary; otherwise it is real
/// corruption and fails. A truncated tail (kOutOfRange from the log reader)
/// is always a clean end.
Status ReplayStoreSegment(ReadableFileSystem* fs, const std::string& path,
                          uint64_t segment, bool tolerate_damaged_tail,
                          std::map<uint64_t, StoreSegmentEntry>* entries,
                          std::map<uint64_t, uint64_t>* tombstones,
                          StoreSegmentReplayResult* result);

/// Same, over an already-open file (\p path only labels errors). A replica
/// opens every segment of a generation first — pinning them against the
/// primary's compaction deleting the files — and replays from the handles.
Status ReplayStoreSegment(std::unique_ptr<SequentialFile> file,
                          const std::string& path, uint64_t segment,
                          bool tolerate_damaged_tail,
                          std::map<uint64_t, StoreSegmentEntry>* entries,
                          std::map<uint64_t, uint64_t>* tombstones,
                          StoreSegmentReplayResult* result);

/// Resolves replayed entries against tombstones into the live key set: an
/// entry survives unless a tombstone with a higher sequence shadows it.
/// Consumes \p entries (blobs are moved, not copied). Returns the highest
/// sequence number seen (entries and tombstones both), 0 when empty.
uint64_t ResolveReplayedEntries(
    std::map<uint64_t, StoreSegmentEntry>* entries,
    const std::map<uint64_t, uint64_t>& tombstones,
    std::map<uint64_t, StoreSegmentEntry>* resolved);

}  // namespace ldphh

#endif  // LDPHH_STORE_STORE_FORMAT_H_
