#include "src/store/checkpoint_store.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>
#include <utility>

#include "src/common/serde.h"
#include "src/common/timer.h"
#include "src/obs/trace.h"

namespace ldphh {

namespace {

// A fresh id per Open. Entropy from random_device, mixed with the clock in
// case the device is deterministic on some platform: two incarnations
// colliding would let a replica trust a rolled-back-and-reissued MANIFEST
// generation.
uint64_t DrawIncarnation() {
  std::random_device rd;
  uint64_t id = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  id ^= static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  // 0 is reserved: it marks a v1 MANIFEST (no incarnation field), which
  // replicas refuse to tail.
  return id != 0 ? id : 1;
}

}  // namespace

std::string CheckpointStore::PathOf(uint64_t segment) const {
  return dir_ + "/" + StoreSegmentFileName(segment);
}

Status CheckpointStore::SyncDirIfDurable() {
  if (options_.sync_mode == SyncMode::kNone) return Status::OK();
  return fs_->SyncDirectory(dir_);
}

CheckpointStore::CheckpointStore(std::string dir, CheckpointStoreOptions options)
    : dir_(std::move(dir)),
      options_(options),
      fs_(options.file_system != nullptr ? options.file_system
                                         : FileSystem::Default()),
      incarnation_(DrawIncarnation()) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  puts_ = reg.NewCounter("ldphh_store_puts_total", "Put operations acked");
  deletes_ = reg.NewCounter("ldphh_store_deletes_total",
                            "Delete operations acked (tombstones)");
  appended_bytes_ = reg.NewCounter(
      "ldphh_store_appended_bytes_total",
      "Record bytes (header + payload) appended to segments", "bytes");
  compactions_ = reg.NewCounter("ldphh_store_compactions_total",
                                "Compaction passes completed");
  manifest_installs_ = reg.NewCounter("ldphh_store_manifest_installs_total",
                                      "MANIFEST replacements installed");
  recovered_records_ = reg.NewCounter("ldphh_store_recovered_records_total",
                                      "Records replayed at Open");
  recovered_bytes_ = reg.NewCounter("ldphh_store_recovered_bytes_total",
                                    "Segment bytes scanned at Open", "bytes");
  dropped_tail_records_ = reg.NewCounter(
      "ldphh_store_dropped_tail_records_total",
      "Torn/corrupt active-tail records discarded at Open");
  group_commits_ = reg.NewCounter(
      "ldphh_store_group_commits_total",
      "Group commits (one shared append + sync per group)");
  group_follower_writes_ = reg.NewCounter(
      "ldphh_store_group_follower_writes_total",
      "Write intents acknowledged by another writer's group commit");
  group_commit_writes_ = reg.NewCounter(
      "ldphh_store_group_commit_writes_total",
      "Write intents acknowledged through the group-commit lane");
  group_size_ = reg.NewHistogram(
      "ldphh_store_group_size", "Write intents coalesced per group commit",
      "records");
  put_duration_ns_ = reg.NewHistogram(
      "ldphh_store_put_duration_ns",
      "Put latency (append + sync per sync_mode, possible segment roll)",
      "ns");
  compaction_duration_ns_ = reg.NewHistogram(
      "ldphh_store_compaction_duration_ns",
      "Completed compaction pass duration (write + install + delete)", "ns");
  live_segments_gauge_ =
      reg.NewGauge("ldphh_store_live_segments",
                   "Segments in the current MANIFEST", "segments");
  sealed_segments_gauge_ =
      reg.NewGauge("ldphh_store_sealed_segments",
                   "Live segments no longer written to", "segments");
  entries_gauge_ =
      reg.NewGauge("ldphh_store_entries", "Distinct live keys", "keys");
  manifest_sequence_gauge_ =
      reg.NewGauge("ldphh_store_manifest_sequence",
                   "Install generation of the current MANIFEST");
  put_spans_ = obs::SpanSampler::Global().Family("store.put");
  delete_spans_ = obs::SpanSampler::Global().Family("store.delete");
}

StatusOr<std::unique_ptr<CheckpointStore>> CheckpointStore::Open(
    const std::string& dir, const CheckpointStoreOptions& options) {
  if (options.segment_max_bytes < 1) {
    return Status::InvalidArgument("checkpoint store: segment_max_bytes < 1");
  }
  std::unique_ptr<CheckpointStore> store(
      new CheckpointStore(dir, options));
  {
    // Single-threaded here (no worker exists yet); locked so Recover's
    // guarded-member writes stay inside the analyzed discipline.
    MutexLock lk(&store->mu_);
    LDPHH_RETURN_IF_ERROR(store->Recover());
  }
  if (options.background_compaction && options.compaction_trigger > 0) {
    store->compactor_ = std::thread([s = store.get()] { s->BackgroundLoop(); });
  }
  // Admin-plane registrations, installed only once recovery succeeded (a
  // store that never opened is not "unhealthy" — it does not exist).
  store->health_ = obs::HealthRegistry::Global().Register(
      "store:" + dir, [s = store.get()] { return s->WriteHealth(); });
  store->statusz_ = obs::StatuszRegistry::Global().Register(
      "store", [s = store.get()](obs::JsonWriter& w) {
        const CheckpointStoreStats stats = s->Stats();
        w.BeginObject();
        w.Key("dir").String(s->dir_);
        w.Key("sync_mode").String(SyncModeName(s->options_.sync_mode));
        w.Key("live_segments").Uint(stats.live_segments);
        w.Key("sealed_segments").Uint(stats.sealed_segments);
        w.Key("entries").Uint(stats.entries);
        w.Key("manifest_sequence").Uint(stats.manifest_sequence);
        w.Key("compactions").Uint(stats.compactions);
        w.Key("manifest_installs").Uint(stats.manifest_installs);
        w.Key("puts").Uint(s->puts_->Value());
        w.Key("deletes").Uint(s->deletes_->Value());
        w.Key("appended_bytes").Uint(s->appended_bytes_->Value());
        w.Key("group_commit").Bool(s->options_.group_commit);
        w.Key("group_commits").Uint(s->group_commits_->Value());
        w.Key("group_commit_writes").Uint(s->group_commit_writes_->Value());
        const Status health = s->WriteHealth();
        w.Key("write_health").String(health.ok() ? "ok" : health.message());
        w.EndObject();
      });
  return store;
}

CheckpointStore::~CheckpointStore() {
  {
    MutexLock lk(&mu_);
    stop_ = true;
    work_cv_.SignalAll();
    idle_cv_.SignalAll();
  }
  if (compactor_.joinable()) compactor_.join();
  IgnoreStatus(active_writer_.Close(),
               "acknowledged writes were already synced per sync_mode; a"
               " destructor has no caller to report to");
}

// ---------------------------------------------------------------- recovery --

Status CheckpointStore::Recover() {
  LDPHH_RETURN_IF_ERROR(fs_->CreateDirectories(dir_));

  // Phase 1: sweep crash debris — a temp MANIFEST whose rename never
  // happened is simply an uninstalled proposal.
  std::vector<std::string> names;
  LDPHH_RETURN_IF_ERROR(fs_->ListDirectory(dir_, &names));
  bool swept = false;
  for (const std::string& name : names) {
    if (name.size() > 4 &&
        name.compare(name.size() - 4, 4, kStoreTempSuffix) == 0) {
      LDPHH_RETURN_IF_ERROR(fs_->RemoveFile(dir_ + "/" + name));
      swept = true;
    }
  }

  // Phase 2: the MANIFEST names the live segment set.
  const std::string manifest_path = dir_ + "/" + kStoreManifestName;
  auto have_manifest_or = fs_->FileExists(manifest_path);
  LDPHH_RETURN_IF_ERROR(have_manifest_or.status());
  const bool have_manifest = have_manifest_or.value();
  if (have_manifest) {
    StoreManifest manifest;
    LDPHH_RETURN_IF_ERROR(ReadStoreManifest(fs_, manifest_path, &manifest));
    manifest_sequence_ = manifest.sequence;
    next_segment_ = manifest.next_segment;
    active_segment_ = manifest.active_segment;
    live_ = std::move(manifest.live);
  }

  // Phase 3: any segment file the MANIFEST does not list is garbage — an
  // uninstalled compaction output or a superseded input whose deletion did
  // not finish (invariant I3). Without a MANIFEST the directory must hold
  // no segments at all: refuse to guess (and to delete) otherwise.
  for (const std::string& name : names) {
    uint64_t seg = 0;
    if (!ParseStoreSegmentFileName(name, &seg)) continue;
    if (!have_manifest) {
      return Status::FailedPrecondition(
          "checkpoint store: segment files present but no MANIFEST in " + dir_);
    }
    if (live_.count(seg) == 0) {
      LDPHH_RETURN_IF_ERROR(fs_->RemoveFile(dir_ + "/" + name));
      swept = true;
    }
  }
  if (swept) LDPHH_RETURN_IF_ERROR(SyncDirIfDurable());

  if (!have_manifest) {
    // Fresh store: install the first MANIFEST before the active segment
    // receives any record (invariant I2).
    active_segment_ = 1;
    next_segment_ = 2;
    live_.insert(active_segment_);
    LDPHH_RETURN_IF_ERROR(
        InstallManifestLocked(live_, next_segment_, active_segment_));
    return active_writer_.Open(PathOf(active_segment_), fs_,
                               options_.sync_mode);
  }

  // Phase 4: replay every live segment. Order does not matter for
  // correctness — the per-record sequence number decides the winner per key
  // — but ascending order keeps the scan cache-friendly.
  std::map<uint64_t, StoreSegmentEntry> entries;
  std::map<uint64_t, uint64_t> tombstones;
  for (uint64_t seg : live_) {
    LDPHH_RETURN_IF_ERROR(
        ReplaySegment(seg, seg == active_segment_, &entries, &tombstones));
  }
  const uint64_t max_sequence =
      ResolveReplayedEntries(&entries, tombstones, &entries_);
  next_sequence_ = std::max(next_sequence_, max_sequence + 1);

  // Phase 5: never append after recovered bytes — if the old active segment
  // holds data, seal it and roll a fresh one (invariant I4).
  uint64_t active_size = 0;
  auto active_exists_or = fs_->FileExists(PathOf(active_segment_));
  LDPHH_RETURN_IF_ERROR(active_exists_or.status());
  if (active_exists_or.value()) {
    auto size_or = fs_->FileSize(PathOf(active_segment_));
    LDPHH_RETURN_IF_ERROR(size_or.status());
    active_size = size_or.value();
  }
  if (active_size > 0) {
    active_segment_ = next_segment_++;
    live_.insert(active_segment_);
  }
  // Install a MANIFEST on every recovery, even when nothing rolled (an
  // empty active segment is kept as-is): the bumped install generation
  // tells a tailing replica that a new incarnation owns the directory. A
  // power loss can shrink the active file (dropping unsynced bytes) and a
  // later write regrow it to a size a replica already saw — only the
  // generation bump keeps its "same generation + same size = same content"
  // fast path sound.
  LDPHH_RETURN_IF_ERROR(
      InstallManifestLocked(live_, next_segment_, active_segment_));
  obs::TraceRing::Global().Record("store", "recover", dir_,
                                  recovered_records_->Value(),
                                  manifest_sequence_);
  return active_writer_.Open(PathOf(active_segment_), fs_, options_.sync_mode);
}

Status CheckpointStore::ReplaySegment(uint64_t segment, bool is_active,
                                      std::map<uint64_t, StoreSegmentEntry>* entries,
                                      std::map<uint64_t, uint64_t>* tombstones) {
  const std::string path = PathOf(segment);
  auto exists_or = fs_->FileExists(path);
  LDPHH_RETURN_IF_ERROR(exists_or.status());
  if (!exists_or.value()) {
    // Only the active segment may legitimately not exist yet: it is listed
    // in the MANIFEST before its first byte is written. (A power loss can
    // also drop a created-but-never-synced segment file whole — only ever
    // the active one, whose records were then never acknowledged.)
    if (is_active) return Status::OK();
    return Status::Internal("checkpoint store: live segment missing: " + path);
  }

  StoreSegmentReplayResult replay;
  LDPHH_RETURN_IF_ERROR(ReplayStoreSegment(fs_, path, segment,
                                           /*tolerate_damaged_tail=*/is_active,
                                           entries, tombstones, &replay));
  recovered_records_->Increment(replay.records);
  recovered_bytes_->Increment(replay.clean_end);
  dropped_tail_records_->Increment(replay.dropped_tail_records);
  if (replay.dropped_tail_records > 0) {
    obs::TraceRing::Global().Record("store", "recovery_dropped_tail", path,
                                    replay.dropped_tail_records,
                                    replay.clean_end);
  }
  const uint64_t clean_end = replay.clean_end;

  // Truncate the active segment at the last clean record so the damaged
  // region cannot shadow future appends (it is sealed right after anyway;
  // the truncation keeps every later replay deterministic — and is
  // idempotent, so a power loss that undoes it is re-handled next Open).
  if (is_active) {
    auto size_or = fs_->FileSize(path);
    if (size_or.ok() && size_or.value() > clean_end) {
      LDPHH_RETURN_IF_ERROR(fs_->Truncate(path, clean_end));
      if (options_.sync_mode != SyncMode::kNone) {
        // Make the truncation stick: the segment is sealed right after,
        // and a resurrected torn tail in a *sealed* segment would read as
        // real corruption on the Open after the next power loss.
        auto file_or = fs_->NewWritableFile(path);
        LDPHH_RETURN_IF_ERROR(file_or.status());
        std::unique_ptr<WritableFile> file = std::move(file_or).value();
        LDPHH_RETURN_IF_ERROR(file->Sync(SyncMode::kFull));
        LDPHH_RETURN_IF_ERROR(file->Close());
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------- manifest --

Status CheckpointStore::InstallManifestLocked(const std::set<uint64_t>& live,
                                              uint64_t next_segment,
                                              uint64_t active_segment,
                                              bool abandon_before_rename) {
  const std::string manifest_path = dir_ + "/" + kStoreManifestName;
  const std::string tmp_path = manifest_path + kStoreTempSuffix;
  LDPHH_RETURN_IF_ERROR(fs_->RemoveFile(tmp_path));

  StoreManifest manifest;
  manifest.sequence = manifest_sequence_ + 1;
  manifest.incarnation = incarnation_;
  manifest.next_segment = next_segment;
  manifest.active_segment = active_segment;
  manifest.live = live;
  const std::string payload = EncodeStoreManifest(manifest);

  // The MANIFEST is tiny and installed rarely: always full-sync it (unless
  // the store as a whole opted out of durability). The temp file is synced
  // before the rename so the bytes the new MANIFEST entry points at cannot
  // be lost while the entry survives; the parent directory is synced after
  // the rename so the entry itself cannot be lost (or un-renamed) either.
  const SyncMode manifest_mode = options_.sync_mode == SyncMode::kNone
                                     ? SyncMode::kNone
                                     : SyncMode::kFull;
  CheckpointWriter writer;
  LDPHH_RETURN_IF_ERROR(writer.Open(tmp_path, fs_, manifest_mode));
  LDPHH_RETURN_IF_ERROR(writer.Append(kStoreManifestRecord, payload));
  LDPHH_RETURN_IF_ERROR(writer.Sync());
  LDPHH_RETURN_IF_ERROR(writer.Close());
  if (abandon_before_rename) return Status::OK();

  // Atomic install (invariant I1).
  if (options_.sync_mode == SyncMode::kNone) {
    LDPHH_RETURN_IF_ERROR(fs_->RenameFile(tmp_path, manifest_path));
  } else {
    LDPHH_RETURN_IF_ERROR(fs_->RenameAndSync(tmp_path, manifest_path));
  }
  ++manifest_sequence_;
  manifest_installs_->Increment();
  manifest_sequence_gauge_->Set(static_cast<double>(manifest_sequence_));
  live_segments_gauge_->Set(static_cast<double>(live.size()));
  sealed_segments_gauge_->Set(
      live.empty() ? 0.0 : static_cast<double>(live.size() - 1));
  obs::TraceRing::Global().Record("store", "manifest_install", "",
                                  manifest_sequence_, live.size());
  return Status::OK();
}

// ------------------------------------------------------------------ writes --

Status CheckpointStore::AppendRecordLocked(CheckpointRecordType type,
                                           uint64_t key, std::string_view blob,
                                           obs::Span& span) {
  const uint64_t sequence = next_sequence_++;
  std::string payload;
  payload.reserve(16 + blob.size());
  PutU64(&payload, key);
  PutU64(&payload, sequence);
  payload.append(blob.data(), blob.size());
  {
    const obs::Span::ChildScope append = span.Child("append");
    LDPHH_RETURN_IF_ERROR(active_writer_.Append(type, payload));
  }
  {
    // Durable before the caller is acknowledged (per sync_mode; the first
    // sync of a freshly rolled segment also syncs its directory entry).
    const obs::Span::ChildScope sync = span.Child("sync");
    LDPHH_RETURN_IF_ERROR(active_writer_.Sync());
  }
  active_bytes_ += kCheckpointRecordHeaderSize + payload.size();
  appended_bytes_->Increment(kCheckpointRecordHeaderSize + payload.size());

  if (type == kStoreEntryRecord) {
    StoreSegmentEntry entry;
    entry.sequence = sequence;
    entry.segment = active_segment_;
    entry.blob = std::string(blob);
    entries_[key] = std::move(entry);
  } else {
    entries_.erase(key);
  }

  entries_gauge_->Set(static_cast<double>(entries_.size()));
  if (active_bytes_ >= options_.segment_max_bytes) {
    const obs::Span::ChildScope roll = span.Child("roll");
    LDPHH_RETURN_IF_ERROR(RollActiveLocked());
  }
  return Status::OK();
}

Status CheckpointStore::RollActiveLocked() {
  LDPHH_RETURN_IF_ERROR(active_writer_.Close());
  active_segment_ = next_segment_++;
  live_.insert(active_segment_);
  // Listed-then-written (invariant I2): the MANIFEST names the new active
  // segment before the segment file exists.
  LDPHH_RETURN_IF_ERROR(
      InstallManifestLocked(live_, next_segment_, active_segment_));
  LDPHH_RETURN_IF_ERROR(
      active_writer_.Open(PathOf(active_segment_), fs_, options_.sync_mode));
  active_bytes_ = 0;
  obs::TraceRing::Global().Record("store", "segment_roll", "", active_segment_,
                                  live_.size());
  return Status::OK();
}

// -------------------------------------------------------------- group lane --

namespace {

/// On-disk size of one encoded store record for a write intent: CRC header
/// plus the (key, sequence) prefix plus the blob.
size_t EncodedSizeOf(const StoreWrite& w) {
  return kCheckpointRecordHeaderSize + 16 + (w.is_delete ? 0 : w.blob.size());
}

}  // namespace

Status CheckpointStore::GroupWrite(const StoreWrite* writes, size_t count,
                                   obs::Span& span) {
  size_t bytes = 0;
  for (size_t i = 0; i < count; ++i) bytes += EncodedSizeOf(writes[i]);

  MutexLock lk(&mu_);
  if (!active_writer_.is_open()) {
    return Status::FailedPrecondition("checkpoint store: not open");
  }
  if (group_crashed_) {
    return Status::Internal(
        "checkpoint store: store is down after a simulated group-commit "
        "crash (reopen to recover)");
  }
  PendingWrite w(&mu_, writes, count, bytes);
  group_queue_.push_back(&w);
  {
    // Park until a leader commits this writer's records (done) or the
    // writer reaches the queue front and must lead the next group itself.
    const obs::Span::ChildScope wait = span.Child("group_wait");
    while (!w.done && group_queue_.front() != &w) w.cv.Wait();
  }
  if (w.done) return w.status;
  return LeadGroupCommit(&w, span);
}

Status CheckpointStore::LeadGroupCommit(PendingWrite* self, obs::Span& span) {
  // Oscillation damping: when a full group commits, every member wakes at
  // once, and the first writer to loop back would otherwise lead a group
  // of one — paying a whole sync — while its peers are still mid-wakeup.
  // If the queue is thinner than the group that just committed, give the
  // stragglers one scheduler turn to enqueue before freezing membership.
  // Holding the queue-front position across the unlock keeps this safe
  // (parked writers cannot commit past the leader), and a steadily lone
  // writer never yields: last_group_records_ settles to 1 after one
  // solo commit.
  {
    size_t queued = 0;
    for (const PendingWrite* w : group_queue_) queued += w->count;
    if (queued < last_group_records_) {
      mu_.Unlock();
      std::this_thread::yield();
      mu_.Lock();
    }
  }

  // Coalesce the queue head into one group. The leader (queue front) joins
  // unconditionally — a batch bigger than the bounds still commits whole —
  // and later writers join until a bound would be crossed; whoever is left
  // behind leads the next group.
  std::vector<PendingWrite*> group;
  size_t records = 0;
  size_t bytes = 0;
  for (PendingWrite* w : group_queue_) {
    if (!group.empty() && (records + w->count > options_.group_max_records ||
                           bytes + w->bytes > options_.group_max_bytes)) {
      break;
    }
    group.push_back(w);
    records += w->count;
    bytes += w->bytes;
  }
  last_group_records_ = records;

  // Assign the group's sequence numbers and encode every record into one
  // contiguous buffer under the lock (cheap CPU work; queue order is
  // sequence order). Only the file I/O below runs unlocked.
  const GroupCrashPoint crash =
      group_crash_point_.exchange(GroupCrashPoint::kNone);
  const uint64_t first_sequence = next_sequence_;
  std::string encoded;
  encoded.reserve(bytes);
  size_t half_offset = 0;  // Bytes of the first ~half of the records — the
                           // kAfterPartialAppend torn-group cut.
  size_t encoded_records = 0;
  Status result;
  std::string payload;  // Reused per record: one allocation per group.
  for (PendingWrite* w : group) {
    for (size_t i = 0; i < w->count && result.ok(); ++i) {
      const StoreWrite& intent = w->writes[i];
      const uint64_t sequence = next_sequence_++;
      payload.clear();
      payload.reserve(16 + intent.blob.size());
      PutU64(&payload, intent.key);
      PutU64(&payload, sequence);
      if (!intent.is_delete) {
        payload.append(intent.blob.data(), intent.blob.size());
      }
      result = CheckpointWriter::EncodeRecord(
          intent.is_delete ? kStoreTombstoneRecord : kStoreEntryRecord,
          payload, &encoded);
      ++encoded_records;
      if (encoded_records == (records + 1) / 2) half_offset = encoded.size();
    }
    if (!result.ok()) break;
  }

  if (result.ok()) {
    // The queue-front position is the exclusive-writer token: releasing
    // mu_ here lets new writers enqueue (so groups can actually form
    // behind a slow fsync) while no one else can touch the active writer —
    // every write goes through this lane, rolls happen only here, and
    // compaction never writes the active segment. The alias pointer keeps
    // the unlocked calls outside the analyzed mu_ discipline on purpose.
    CheckpointWriter* writer = &active_writer_;
    mu_.Unlock();
    if (crash != GroupCrashPoint::kAfterEnqueue) {
      const size_t append_bytes = crash == GroupCrashPoint::kAfterPartialAppend
                                      ? half_offset
                                      : encoded.size();
      const uint64_t append_records =
          crash == GroupCrashPoint::kAfterPartialAppend ? (records + 1) / 2
                                                        : records;
      {
        const obs::Span::ChildScope append = span.Child("group_append");
        result = writer->AppendEncoded(
            std::string_view(encoded).substr(0, append_bytes), append_records);
      }
      const bool sync = crash != GroupCrashPoint::kAfterPartialAppend &&
                        crash != GroupCrashPoint::kAfterAppendPreSync;
      if (result.ok() && sync) {
        const obs::Span::ChildScope group_sync = span.Child("group_sync");
        result = writer->Sync();
      }
    }
    mu_.Lock();
  }

  if (crash != GroupCrashPoint::kNone) {
    // Simulated power loss: the process is gone, so nobody is acknowledged
    // — not even writers whose bytes reached the platter (the
    // kAfterSyncPreNotify phase: durable yet unacked, which recovery must
    // still replay). Drain the whole queue, not just the group: every
    // parked writer dies with the "process".
    group_crashed_ = true;
    const Status aborted = Status::Internal(
        "checkpoint store: simulated power loss during group commit");
    while (!group_queue_.empty()) {
      PendingWrite* w = group_queue_.front();
      group_queue_.pop_front();
      w->status = aborted;
      w->done = true;
      if (w != self) w->cv.Signal();
    }
    return aborted;
  }

  if (!result.ok()) {
    // One failed append/sync fails every member of the group — none of
    // their records is known durable (some may still land, exactly like a
    // failed single-writer sync). Nothing is applied in memory; the next
    // group starts clean and heals the write-health latch if it succeeds.
    for (PendingWrite* member : group) {
      group_queue_.pop_front();
      member->status = result;
      member->done = true;
      if (member != self) member->cv.Signal();
    }
    if (!group_queue_.empty()) group_queue_.front()->cv.Signal();
    return result;
  }

  // Durable: apply the group in memory in sequence order, then wake the
  // members. The reserved sequences are contiguous from first_sequence.
  uint64_t sequence = first_sequence;
  for (PendingWrite* w : group) {
    for (size_t i = 0; i < w->count; ++i) {
      const StoreWrite& intent = w->writes[i];
      if (intent.is_delete) {
        entries_.erase(intent.key);
      } else {
        StoreSegmentEntry entry;
        entry.sequence = sequence;
        entry.segment = active_segment_;
        entry.blob = std::string(intent.blob);
        entries_[intent.key] = std::move(entry);
      }
      ++sequence;
    }
  }
  active_bytes_ += encoded.size();
  appended_bytes_->Increment(encoded.size());
  entries_gauge_->Set(static_cast<double>(entries_.size()));
  group_commits_->Increment();
  group_commit_writes_->Increment(records);
  group_follower_writes_->Increment(records - self->count);
  group_size_->Observe(records);

  Status rolled;
  if (active_bytes_ >= options_.segment_max_bytes) {
    const obs::Span::ChildScope roll = span.Child("roll");
    rolled = RollActiveLocked();
  }

  // Acknowledge the group. A failed roll does not unwind durability —
  // every record is already synced — so only the leader reports it (and
  // latches write health); the followers' writes genuinely succeeded.
  for (PendingWrite* member : group) {
    group_queue_.pop_front();
    member->status = Status::OK();
    member->done = true;
    if (member != self) member->cv.Signal();
  }
  if (!group_queue_.empty()) group_queue_.front()->cv.Signal();
  return rolled;
}

void CheckpointStore::MaybeSignalCompaction() {
  // Without a background worker nobody waits on work_cv_ for this signal,
  // so skip the extra trip through the (write-contended) store mutex.
  if (!options_.background_compaction || options_.compaction_trigger <= 0) {
    return;
  }
  MutexLock lk(&mu_);
  if (SealedCountLocked() >= std::max(options_.compaction_trigger, 2)) {
    work_cv_.Signal();
  }
}

Status CheckpointStore::Put(uint64_t key, std::string_view blob) {
  obs::Span span(put_spans_.get());
  span.set_args(key, blob.size());
  if (options_.group_commit) {
    StoreWrite w;
    w.key = key;
    w.blob = blob;
    const Status result = GroupWrite(&w, 1, span);
    RecordWriteHealth(result);
    if (!result.ok()) {
      span.set_detail(result.message());
      return result;
    }
    puts_->Increment();
    put_duration_ns_->Observe(span.ElapsedNs());
    MaybeSignalCompaction();
    return Status::OK();
  }
  bool wake = false;
  Status appended;
  {
    MutexLock lk(&mu_);
    if (!active_writer_.is_open()) {
      return Status::FailedPrecondition("checkpoint store: not open");
    }
    appended = AppendRecordLocked(kStoreEntryRecord, key, blob, span);
    wake = options_.compaction_trigger > 0 &&
           SealedCountLocked() >= std::max(options_.compaction_trigger, 2);
  }
  RecordWriteHealth(appended);
  if (!appended.ok()) {
    span.set_detail(appended.message());
    return appended;
  }
  puts_->Increment();
  put_duration_ns_->Observe(span.ElapsedNs());
  if (wake) {
    MutexLock lk(&mu_);
    work_cv_.Signal();
  }
  return Status::OK();
}

Status CheckpointStore::Delete(uint64_t key) {
  obs::Span span(delete_spans_.get());
  span.set_args(key);
  if (options_.group_commit) {
    StoreWrite w;
    w.is_delete = true;
    w.key = key;
    const Status result = GroupWrite(&w, 1, span);
    RecordWriteHealth(result);
    if (!result.ok()) {
      span.set_detail(result.message());
      return result;
    }
    deletes_->Increment();
    MaybeSignalCompaction();
    return Status::OK();
  }
  bool wake = false;
  Status appended;
  {
    MutexLock lk(&mu_);
    if (!active_writer_.is_open()) {
      return Status::FailedPrecondition("checkpoint store: not open");
    }
    appended = AppendRecordLocked(kStoreTombstoneRecord, key, {}, span);
    wake = options_.compaction_trigger > 0 &&
           SealedCountLocked() >= std::max(options_.compaction_trigger, 2);
  }
  RecordWriteHealth(appended);
  if (!appended.ok()) {
    span.set_detail(appended.message());
    return appended;
  }
  deletes_->Increment();
  if (wake) {
    MutexLock lk(&mu_);
    work_cv_.Signal();
  }
  return Status::OK();
}

Status CheckpointStore::Apply(const std::vector<StoreWrite>& writes) {
  if (writes.empty()) return Status::OK();
  obs::Span span(put_spans_.get());
  size_t blob_bytes = 0;
  for (const StoreWrite& w : writes) {
    blob_bytes += w.is_delete ? 0 : w.blob.size();
  }
  span.set_args(writes.size(), blob_bytes);

  Status result;
  size_t applied = 0;
  bool wake = false;
  if (options_.group_commit) {
    // The whole batch is one group member: one shared append + sync covers
    // it (and any concurrent writers that joined the same group).
    result = GroupWrite(writes.data(), writes.size(), span);
    if (result.ok()) applied = writes.size();
  } else {
    // Sequential fallback: one append + one sync per intent — exactly the
    // bytes and syncs N separate Put/Delete calls would have issued.
    MutexLock lk(&mu_);
    if (!active_writer_.is_open()) {
      return Status::FailedPrecondition("checkpoint store: not open");
    }
    for (const StoreWrite& w : writes) {
      result = AppendRecordLocked(
          w.is_delete ? kStoreTombstoneRecord : kStoreEntryRecord, w.key,
          w.is_delete ? std::string_view() : w.blob, span);
      if (!result.ok()) break;
      ++applied;
    }
    wake = options_.compaction_trigger > 0 &&
           SealedCountLocked() >= std::max(options_.compaction_trigger, 2);
  }
  RecordWriteHealth(result);
  for (size_t i = 0; i < applied; ++i) {
    if (writes[i].is_delete) {
      deletes_->Increment();
    } else {
      puts_->Increment();
    }
  }
  if (!result.ok()) {
    span.set_detail(result.message());
    return result;
  }
  put_duration_ns_->Observe(span.ElapsedNs());
  if (wake) {
    MutexLock lk(&mu_);
    work_cv_.Signal();
  }
  if (options_.group_commit) MaybeSignalCompaction();
  return Status::OK();
}

Status CheckpointStore::WriteHealth() const {
  if (!has_health_error_.load(std::memory_order_acquire)) return Status::OK();
  MutexLock lk(&health_mu_);
  return health_error_;
}

void CheckpointStore::RecordWriteHealth(const Status& status) {
  if (status.ok()) {
    // Self-heal: the fault cleared and writes land again.
    if (has_health_error_.load(std::memory_order_relaxed)) {
      MutexLock lk(&health_mu_);
      health_error_ = Status::OK();
      has_health_error_.store(false, std::memory_order_release);
    }
    return;
  }
  MutexLock lk(&health_mu_);
  health_error_ = status;
  has_health_error_.store(true, std::memory_order_release);
}

// ------------------------------------------------------------------- reads --

Status CheckpointStore::Get(uint64_t key, std::string* blob) const {
  MutexLock lk(&mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::OutOfRange("checkpoint store: no entry for key " +
                              std::to_string(key));
  }
  *blob = it->second.blob;
  return Status::OK();
}

bool CheckpointStore::Contains(uint64_t key) const {
  MutexLock lk(&mu_);
  return entries_.count(key) != 0;
}

std::vector<uint64_t> CheckpointStore::Keys() const {
  MutexLock lk(&mu_);
  std::vector<uint64_t> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, state] : entries_) keys.push_back(key);
  return keys;
}

CheckpointStoreStats CheckpointStore::Stats() const {
  MutexLock lk(&mu_);
  CheckpointStoreStats s;
  s.live_segments = live_.size();
  s.sealed_segments = static_cast<uint64_t>(SealedCountLocked());
  s.entries = entries_.size();
  s.compactions = compactions_->Value();
  s.manifest_installs = manifest_installs_->Value();
  s.recovered_records = recovered_records_->Value();
  s.recovered_bytes = recovered_bytes_->Value();
  s.dropped_tail_records = dropped_tail_records_->Value();
  s.manifest_sequence = manifest_sequence_;
  s.group_commits = group_commits_->Value();
  s.group_commit_writes = group_commit_writes_->Value();
  return s;
}

// -------------------------------------------------------------- compaction --

Status CheckpointStore::Compact() { return CompactPass(/*respect_trigger=*/false); }

Status CheckpointStore::CompactPass(bool respect_trigger) {
  MutexLock pass_lk(&compaction_mu_);
  const Timer pass_timer;

  const CompactionCrashPoint crash = crash_point_.load();
  std::set<uint64_t> inputs;
  struct Record {
    uint64_t key;
    uint64_t sequence;
    std::string blob;
  };
  std::vector<Record> records;
  uint64_t out_segment = 0;
  {
    MutexLock lk(&mu_);
    if (stop_) return Status::OK();
    for (uint64_t seg : live_) {
      if (seg != active_segment_) inputs.insert(seg);
    }
    const size_t min_inputs =
        respect_trigger
            ? static_cast<size_t>(std::max(options_.compaction_trigger, 2))
            : 1;
    if (inputs.size() < min_inputs) return Status::OK();
    for (const auto& [key, state] : entries_) {
      if (inputs.count(state.segment) != 0) {
        records.push_back(Record{key, state.sequence, state.blob});
      }
    }
    // Reserve the output number now; if the pass dies before the MANIFEST
    // install, the numbered file is an unlisted orphan that the next Open
    // deletes before this number could ever be reused.
    out_segment = next_segment_++;
    compacting_ = true;
  }

  // Phase A: write the consolidated snapshot segment — complete and synced
  // (data and directory entry, per sync_mode) — while the store stays fully
  // available (inputs are immutable and new writes land in the active
  // segment, which is not an input). Written-then-listed (invariant I2):
  // nothing may reference this segment until all of it is durable.
  auto done = [&](Status st) {
    {
      MutexLock lk(&mu_);
      compacting_ = false;
      idle_cv_.SignalAll();
    }
    return st;
  };
  const bool have_output = !records.empty();
  if (have_output) {
    CheckpointWriter writer;
    Status st = writer.Open(PathOf(out_segment), fs_, options_.sync_mode);
    for (const Record& r : records) {
      if (!st.ok()) break;
      std::string payload;
      payload.reserve(16 + r.blob.size());
      PutU64(&payload, r.key);
      PutU64(&payload, r.sequence);
      payload.append(r.blob);
      st = writer.Append(kStoreEntryRecord, payload);
    }
    if (st.ok()) st = writer.Sync();
    if (st.ok()) st = writer.Close();
    if (!st.ok()) return done(st);
    obs::TraceRing::Global().Record("store", "compaction_phase_a", "",
                                    out_segment, records.size());
  }
  if (crash == CompactionCrashPoint::kAfterConsolidatedSegment) {
    return done(Status::OK());
  }

  // Phase B: atomically install the MANIFEST that swaps the inputs for the
  // consolidated segment. Split around the rename so the crash tests can
  // observe both halves.
  {
    mu_.Lock();
    std::set<uint64_t> new_live;
    for (uint64_t seg : live_) {
      if (inputs.count(seg) == 0) new_live.insert(seg);
    }
    if (have_output) new_live.insert(out_segment);

    const bool abandon = crash == CompactionCrashPoint::kAfterTempManifest;
    const Status st = InstallManifestLocked(new_live, next_segment_,
                                            active_segment_, abandon);
    if (!st.ok() || abandon) {
      mu_.Unlock();  // done() re-locks mu_ to clear the compacting flag.
      return done(st);
    }

    live_ = std::move(new_live);
    for (auto& [key, state] : entries_) {
      if (inputs.count(state.segment) != 0) state.segment = out_segment;
    }
    const uint64_t installed_sequence = manifest_sequence_;
    mu_.Unlock();
    compactions_->Increment();
    obs::TraceRing::Global().Record("store", "compaction_phase_b", "",
                                    installed_sequence, inputs.size());
  }
  if (crash == CompactionCrashPoint::kAfterManifestInstall) {
    return done(Status::OK());
  }

  // Phase C: the superseded inputs are now unlisted; delete them, then sync
  // the directory so the deletions stick. A crash (or power loss) here
  // leaves orphans — or resurrects them — for the next Open to sweep
  // (invariant I3).
  for (uint64_t seg : inputs) {
    const Status st = fs_->RemoveFile(PathOf(seg));
    if (!st.ok()) return done(st);
  }
  if (!inputs.empty()) {
    const Status st = SyncDirIfDurable();
    if (!st.ok()) return done(st);
  }
  obs::TraceRing::Global().Record("store", "compaction_phase_c", "",
                                  inputs.size(), out_segment);
  compaction_duration_ns_->Observe(static_cast<uint64_t>(pass_timer.Nanos()));
  return done(Status::OK());
}

void CheckpointStore::BackgroundLoop() {
  const int trigger = std::max(options_.compaction_trigger, 2);
  mu_.Lock();
  while (!stop_) {
    if (SealedCountLocked() >= trigger && !compacting_) {
      mu_.Unlock();
      const Status st = CompactPass(/*respect_trigger=*/true);
      mu_.Lock();
      // On success, re-check immediately (a roll may have raced past the
      // trigger again). A failed pass parks until the next write wakes the
      // thread, so a persistent I/O error cannot busy-spin; the failure
      // itself surfaces via Stats().compactions staying put.
      if (st.ok()) continue;
    }
    work_cv_.Wait();
  }
  mu_.Unlock();
}

Status CheckpointStore::WaitForCompaction() {
  const int trigger = std::max(options_.compaction_trigger, 2);
  const bool background =
      options_.background_compaction && options_.compaction_trigger > 0;
  MutexLock lk(&mu_);
  const auto idle = [&]() REQUIRES(mu_) {
    if (compacting_) return false;
    if (!background) return true;
    return stop_ || SealedCountLocked() < trigger;
  };
  while (!idle()) idle_cv_.Wait();
  return Status::OK();
}

}  // namespace ldphh
