#include "src/store/store_format.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <utility>

#include "src/common/serde.h"

namespace ldphh {

std::string StoreSegmentFileName(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu.seg",
                static_cast<unsigned long long>(n));
  return buf;
}

bool ParseStoreSegmentFileName(const std::string& name, uint64_t* number) {
  const size_t dot = name.rfind(".seg");
  if (dot == std::string::npos || dot + 4 != name.size() || dot == 0) {
    return false;
  }
  uint64_t n = 0;
  for (size_t i = 0; i < dot; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
    n = n * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *number = n;
  return true;
}

std::string EncodeStoreManifest(const StoreManifest& manifest) {
  std::string payload;
  PutU16(&payload, kStoreFormatVersion);
  PutU64(&payload, manifest.sequence);
  PutU64(&payload, manifest.incarnation);
  PutU64(&payload, manifest.next_segment);
  PutU64(&payload, manifest.active_segment);
  PutU32(&payload, static_cast<uint32_t>(manifest.live.size()));
  for (uint64_t seg : manifest.live) PutU64(&payload, seg);
  return payload;
}

Status ReadStoreManifest(ReadableFileSystem* fs, const std::string& path,
                         StoreManifest* manifest) {
  *manifest = StoreManifest();
  CheckpointReader reader;
  LDPHH_RETURN_IF_ERROR(reader.Open(path, fs));
  CheckpointRecordType type;
  std::string payload;
  LDPHH_RETURN_IF_ERROR(reader.Read(&type, &payload));
  if (type != kStoreManifestRecord) {
    return Status::DecodeFailure("checkpoint store: MANIFEST record type");
  }
  ByteReader br(payload);
  uint16_t version = 0;
  uint32_t count = 0;
  LDPHH_RETURN_IF_ERROR(br.ReadU16(&version));
  if (version != 1 && version != kStoreFormatVersion) {
    return Status::DecodeFailure(
        "checkpoint store: unsupported MANIFEST version");
  }
  LDPHH_RETURN_IF_ERROR(br.ReadU64(&manifest->sequence));
  // v1 predates the incarnation id; 0 reads as "unknown incarnation" and
  // the first v2 install (every Open writes one) flushes replica caches.
  if (version >= 2) {
    LDPHH_RETURN_IF_ERROR(br.ReadU64(&manifest->incarnation));
  }
  LDPHH_RETURN_IF_ERROR(br.ReadU64(&manifest->next_segment));
  LDPHH_RETURN_IF_ERROR(br.ReadU64(&manifest->active_segment));
  LDPHH_RETURN_IF_ERROR(br.ReadU32(&count));
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t seg = 0;
    LDPHH_RETURN_IF_ERROR(br.ReadU64(&seg));
    manifest->live.insert(seg);
  }
  LDPHH_RETURN_IF_ERROR(reader.Close());
  if (manifest->live.count(manifest->active_segment) == 0 ||
      (!manifest->live.empty() &&
       manifest->next_segment <= *manifest->live.rbegin())) {
    return Status::DecodeFailure("checkpoint store: inconsistent MANIFEST");
  }
  return Status::OK();
}

Status ReplayStoreSegment(ReadableFileSystem* fs, const std::string& path,
                          uint64_t segment, bool tolerate_damaged_tail,
                          std::map<uint64_t, StoreSegmentEntry>* entries,
                          std::map<uint64_t, uint64_t>* tombstones,
                          StoreSegmentReplayResult* result) {
  auto file_or = fs->NewSequentialFile(path);
  LDPHH_RETURN_IF_ERROR(file_or.status());
  return ReplayStoreSegment(std::move(file_or).value(), path, segment,
                            tolerate_damaged_tail, entries, tombstones,
                            result);
}

Status ReplayStoreSegment(std::unique_ptr<SequentialFile> file,
                          const std::string& path, uint64_t segment,
                          bool tolerate_damaged_tail,
                          std::map<uint64_t, StoreSegmentEntry>* entries,
                          std::map<uint64_t, uint64_t>* tombstones,
                          StoreSegmentReplayResult* result) {
  *result = StoreSegmentReplayResult();
  CheckpointReader reader;
  LDPHH_RETURN_IF_ERROR(reader.Open(std::move(file)));
  for (;;) {
    CheckpointRecordType type;
    std::string payload;
    const Status st = reader.Read(&type, &payload);
    if (st.code() == StatusCode::kOutOfRange) break;  // Clean end / torn tail.
    if (!st.ok()) {
      // A complete-but-corrupt record. In a tolerated (active) tail this is
      // the debris of a crash mid-append — or the writer caught mid-record
      // by a concurrent replica — and everything from here on was never
      // acknowledged: drop the tail. Anywhere else it is real corruption.
      if (tolerate_damaged_tail) {
        ++result->dropped_tail_records;
        break;
      }
      return Status::DecodeFailure("checkpoint store: corrupt record in " +
                                   path + ": " + st.message());
    }
    ByteReader br(payload);
    uint64_t key = 0, sequence = 0;
    LDPHH_RETURN_IF_ERROR(br.ReadU64(&key));
    LDPHH_RETURN_IF_ERROR(br.ReadU64(&sequence));
    if (type == kStoreEntryRecord) {
      auto it = entries->find(key);
      if (it == entries->end() || sequence > it->second.sequence) {
        StoreSegmentEntry entry;
        entry.sequence = sequence;
        entry.segment = segment;
        entry.blob = std::string(payload.substr(br.position()));
        (*entries)[key] = std::move(entry);
      }
    } else if (type == kStoreTombstoneRecord) {
      uint64_t& tomb = (*tombstones)[key];
      tomb = std::max(tomb, sequence);
    } else {
      return Status::DecodeFailure("checkpoint store: unknown record type in " +
                                   path);
    }
    result->clean_end = static_cast<uint64_t>(reader.Tell());
    ++result->records;
  }
  return reader.Close();
}

uint64_t ResolveReplayedEntries(
    std::map<uint64_t, StoreSegmentEntry>* entries,
    const std::map<uint64_t, uint64_t>& tombstones,
    std::map<uint64_t, StoreSegmentEntry>* resolved) {
  uint64_t max_sequence = 0;
  for (auto& [key, entry] : *entries) {
    max_sequence = std::max(max_sequence, entry.sequence);
    const auto tomb = tombstones.find(key);
    if (tomb != tombstones.end() && tomb->second > entry.sequence) continue;
    resolved->emplace(key, std::move(entry));
  }
  entries->clear();
  for (const auto& [key, seq] : tombstones) {
    max_sequence = std::max(max_sequence, seq);
  }
  return max_sequence;
}

}  // namespace ldphh
