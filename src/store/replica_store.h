/// \file replica_store.h
/// \brief Read-only replica that tails a live CheckpointStore directory.
///
/// The scale-out read path: one primary owns the directory and its write
/// lock; any number of ReplicaStores (other threads, other processes, a
/// machine on the other end of a shared filesystem) open the same directory
/// read-only and serve Get/Keys — and, through ReplicaView
/// (src/server/replica_view.h), epoch-level WindowedQuery — without ever
/// touching the primary. The same separation LevelDB-family stores get from
/// immutable sorted runs under a single writer, scaled down to this store's
/// whole-blob segments.
///
/// Tail protocol (pull-based; Refresh() is one poll):
///
///   1. Read the MANIFEST. Its install `sequence` is a generation number:
///      unchanged generation + unchanged active-segment size means nothing
///      new, and the poll is two stat-grade operations.
///   2. Otherwise map the manifest's segment set into a fresh snapshot:
///      sealed segments are immutable once listed, so their parsed form is
///      cached across refreshes — and the active segment resumes
///      *incrementally*: within one primary incarnation the file is
///      append-only (recovery truncation re-opens the store, changing the
///      incarnation), so the replica keeps the parsed clean prefix as a
///      chain of immutable parts shared into every snapshot and replays
///      only the bytes appended since into a fresh delta part, skipping
///      the verified prefix without reading it (SequentialFile::Skip). A
///      steady-state tail poll therefore reads *and parses and copies*
///      O(new bytes), not O(file).
///   3. Publish the snapshot atomically: readers hold a shared_ptr to an
///      immutable Snapshot, so Get/Keys never block on a refresh and a
///      snapshot handed out keeps serving (pinned parsed segments) while
///      the primary compacts and deletes the files it came from.
///
/// Safety against the live writer (the PR 3 install protocol does the
/// heavy lifting):
///
///   - The MANIFEST is only ever replaced via tmp-sync + rename + dir-sync,
///     so a reader observes a complete old or complete new MANIFEST, never
///     a torn one: any MANIFEST decode failure is real corruption.
///   - A segment listed as non-active is complete before the MANIFEST
///     naming it installs (invariant I2), so a damaged record there is real
///     corruption too. Only the active segment may have a torn tail — the
///     writer caught mid-append — which ends the replay at the last clean
///     record, exactly like the primary's own recovery.
///   - Compaction may delete a sealed segment between the replica's
///     MANIFEST read and its segment open. The deletion happens strictly
///     after the next MANIFEST install, so the failed open means a newer
///     generation exists: Refresh re-reads the MANIFEST and retries
///     (`max_refresh_retries` bounds the loop; a miss with an *unchanged*
///     generation is real corruption, not a race).
///
/// Staleness model (docs/storage.md spells it out): a snapshot is the
/// primary's state as of the moment the refresh finished reading the
/// active segment's clean prefix — all earlier acknowledged writes
/// included, nothing reordered. Because the primary appends and syncs under
/// its write lock, a refresh can run at most one record ahead of the
/// acknowledgement the primary is about to issue; it can never observe a
/// write the primary did not at least start to commit.

#ifndef LDPHH_STORE_REPLICA_STORE_H_
#define LDPHH_STORE_REPLICA_STORE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/file.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/statusz.h"
#include "src/store/store_format.h"

namespace ldphh {

/// Tuning for ReplicaStore.
struct ReplicaStoreOptions {
  /// Read slice of the file layer; null = FileSystem::Default() (POSIX).
  /// Tests inject a FaultInjectingFileSystem so the replica tails the same
  /// in-memory directory a fault-injected primary writes.
  ReadableFileSystem* file_system = nullptr;
  /// How many times one Refresh() may re-read the MANIFEST when a segment
  /// vanishes mid-pass (a compaction race). Each retry requires the
  /// generation to have advanced, so this bounds pathological churn, not
  /// correctness.
  int max_refresh_retries = 8;
  /// When positive, a background thread calls Refresh() at this cadence —
  /// the hands-off tail mode. Zero (default): the owner polls explicitly.
  std::chrono::milliseconds poll_interval{0};
  /// When positive, the replica registers a *readiness* check (/readyz,
  /// not /healthz — lag heals by tailing, not by restarting) that fails
  /// while the last poll observed more than this many MANIFEST generations
  /// of lag. Zero (default): no check registered.
  uint64_t healthy_lag_bound = 0;
};

/// Counters for tests, benchmarks, and operators — a thin snapshot of this
/// replica's registry instruments (Stats() assembles it).
struct ReplicaStoreStats {
  uint64_t refreshes = 0;           ///< Refresh passes (manual + background).
  uint64_t snapshots_installed = 0; ///< Refreshes that advanced the snapshot.
  uint64_t segment_races = 0;       ///< MANIFEST re-reads forced by a segment
                                    ///< deleted mid-refresh.
  uint64_t segments_replayed = 0;   ///< Segment files parsed end to end.
  uint64_t segment_cache_hits = 0;  ///< Sealed segments served from cache.
  uint64_t incremental_replays = 0; ///< Active-segment replays resumed from
                                    ///< the last clean offset (prefix
                                    ///< skipped, not re-read).
  uint64_t failed_refreshes = 0;    ///< Background refreshes that errored.
  uint64_t manifest_sequence = 0;   ///< Generation of the current snapshot.
};

/// \brief The read-only follower.
///
/// Thread-safe: Get/Contains/Keys/Stats may be called concurrently with
/// each other and with Refresh; Refresh passes serialize among themselves
/// (manual calls and the background tailer share the same pass lock).
class ReplicaStore {
 public:
  class PinnedView;

  /// Opens the store directory at \p dir and performs the first Refresh.
  /// Fails (kFailedPrecondition) if there is no MANIFEST yet — the primary
  /// has not created the store; the caller retries once it has.
  static StatusOr<std::unique_ptr<ReplicaStore>> Open(
      const std::string& dir, const ReplicaStoreOptions& options);

  ~ReplicaStore();
  ReplicaStore(const ReplicaStore&) = delete;
  ReplicaStore& operator=(const ReplicaStore&) = delete;

  /// One tail poll: re-reads the MANIFEST, rebuilds the snapshot if the
  /// generation or the active segment advanced. Returns whether the
  /// visible snapshot changed.
  StatusOr<bool> Refresh();

  /// Pins the current snapshot for a multi-key read: every Get/Keys on the
  /// returned view answers from the same point-in-time state even while
  /// the tail (or a background poller) installs newer snapshots. The view
  /// keeps its parsed segments alive for as long as it is held.
  PinnedView Pin() const;

  /// Fetches the blob stored under \p key in the current snapshot;
  /// kOutOfRange if absent. Bit-for-bit what the primary's Get returned
  /// for the state the snapshot captured. (Single-key convenience; pin a
  /// view for multi-key consistency.)
  Status Get(uint64_t key, std::string* blob) const;

  bool Contains(uint64_t key) const;

  /// All live keys of the current snapshot, ascending.
  std::vector<uint64_t> Keys() const;

  /// MANIFEST install generation of the current snapshot — compare against
  /// the primary's Stats().manifest_sequence for replication lag.
  uint64_t manifest_sequence() const;

  ReplicaStoreStats Stats() const;

  const std::string& dir() const { return dir_; }

 private:
  /// Parsed form of one segment file — immutable once built.
  struct SegmentData {
    std::map<uint64_t, StoreSegmentEntry> entries;
    std::map<uint64_t, uint64_t> tombstones;
    uint64_t clean_bytes = 0;  ///< Offset after the last clean record.
  };

  /// An immutable point-in-time view. `entries` points into the pinned
  /// SegmentData objects, so building a snapshot moves no blob bytes and
  /// an old snapshot outlives the deletion of the files it was parsed from.
  struct Snapshot {
    uint64_t manifest_sequence = 0;
    uint64_t incarnation = 0;       ///< Writing store's Open id.
    uint64_t active_segment = 0;
    uint64_t active_raw_bytes = 0;  ///< Active file size when replayed.
    uint64_t active_clean_bytes = 0;///< Bytes of it the replay consumed; a
                                    ///< cut short of the raw size disables
                                    ///< the no-change fast path until the
                                    ///< tail reads clean.
    std::vector<std::shared_ptr<const SegmentData>> pinned;
    std::map<uint64_t, const StoreSegmentEntry*> entries;
  };

  ReplicaStore(std::string dir, ReplicaStoreOptions options);

  /// The refresh pass body; caller holds refresh_mu_. \p span is the
  /// enclosing poll span ("replica.poll"); manifest reads and snapshot
  /// loads report into it as children.
  StatusOr<bool> RefreshLocked(obs::Span& span) REQUIRES(refresh_mu_);
  /// Loads (or serves from cache) every segment of \p manifest, pinning
  /// files open before replaying so the primary's compaction cannot delete
  /// them mid-pass; fails with kOutOfRange when a segment vanished before
  /// it could be pinned (a stale manifest). \p active_was_missing reports
  /// an un-openable active segment — the caller disambiguates
  /// never-written from compacted-away by re-reading the MANIFEST.
  Status LoadSnapshot(const StoreManifest& manifest,
                      std::shared_ptr<const Snapshot>* out,
                      bool* active_was_missing);
  std::shared_ptr<const Snapshot> CurrentSnapshot() const;
  void TailLoop();

  const std::string dir_;
  const ReplicaStoreOptions options_;
  ReadableFileSystem* const fs_;

  mutable Mutex mu_;  ///< Guards the snapshot_ swap (and the stop flag).
  std::shared_ptr<const Snapshot> snapshot_ GUARDED_BY(mu_);

  // Registry instruments; ReplicaStoreStats snapshots them. All are safe to
  // bump without mu_.
  std::shared_ptr<obs::Counter> refreshes_;
  std::shared_ptr<obs::Counter> snapshots_installed_;
  std::shared_ptr<obs::Counter> segment_races_;
  std::shared_ptr<obs::Counter> segments_replayed_;
  std::shared_ptr<obs::Counter> segment_cache_hits_;
  std::shared_ptr<obs::Counter> incremental_replays_;
  std::shared_ptr<obs::Counter> failed_refreshes_;
  std::shared_ptr<obs::Histogram> poll_duration_ns_;
  std::shared_ptr<obs::Gauge> manifest_sequence_gauge_;
  std::shared_ptr<obs::Gauge> lag_gauge_;

  Mutex refresh_mu_;  ///< Serializes refresh passes.
  /// Parsed sealed segments, keyed by segment number; guarded by
  /// refresh_mu_. Only segments that were non-active when read are cached
  /// (a segment read while active may be a prefix). Entries are evicted
  /// when no longer live — and the whole cache is flushed when the
  /// primary's incarnation changes, because a recovery may have swept and
  /// reallocated segment numbers a rolled-back MANIFEST once listed.
  std::map<uint64_t, std::shared_ptr<const SegmentData>> sealed_cache_
      GUARDED_BY(refresh_mu_);
  uint64_t cache_incarnation_ GUARDED_BY(refresh_mu_) =
      0;  ///< Incarnation the cache belongs to.
  /// Parsed parts of the active segment's clean prefix, in replay order,
  /// for the incremental resume. Each advancing poll parses only the newly
  /// appended bytes into a fresh immutable delta part; the already-parsed
  /// parts are *shared* into every snapshot (no map or blob is copied per
  /// poll — the snapshot merge resolves duplicate keys across parts by
  /// sequence, exactly as it does across segments), and the chain is
  /// consolidated into one part when it grows past a small bound. Guarded
  /// by refresh_mu_ and voided with the cache on an incarnation change
  /// (only recovery — a new incarnation — may truncate the file, so within
  /// one incarnation the prefix is immutable). The covered clean offset is
  /// the last part's clean_bytes.
  std::vector<std::shared_ptr<const SegmentData>> active_parts_
      GUARDED_BY(refresh_mu_);
  uint64_t active_parts_segment_ GUARDED_BY(refresh_mu_) = 0;

  /// Folds an active-parts chain into one fresh part: per key the highest
  /// sequence wins and tombstone sequences max-combine — the same rule the
  /// snapshot merge applies, so the fold is observationally identical.
  /// (A new object: published snapshots keep the old parts pinned.)
  static std::shared_ptr<const SegmentData> ConsolidateParts(
      const std::vector<std::shared_ptr<const SegmentData>>& parts);

  CondVar stop_cv_{&mu_};  ///< Wakes the tailer to exit.
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread tailer_;

  /// Slow-span family for the tail poll (served at /spanz).
  std::shared_ptr<obs::SpanFamily> poll_spans_;

  /// Declared last: unregister (stopping admin-plane callbacks into this
  /// object) before any member the callbacks read is destroyed.
  obs::HealthRegistry::Registration health_;
  obs::StatuszRegistry::Registration statusz_;
};

/// \brief An immutable point-in-time read handle (see ReplicaStore::Pin).
class ReplicaStore::PinnedView {
 public:
  /// kOutOfRange if \p key is absent from the pinned state.
  Status Get(uint64_t key, std::string* blob) const;
  bool Contains(uint64_t key) const;
  /// All live keys of the pinned state, ascending.
  std::vector<uint64_t> Keys() const;
  /// MANIFEST install generation of the pinned state.
  uint64_t manifest_sequence() const;

 private:
  friend class ReplicaStore;
  explicit PinnedView(std::shared_ptr<const Snapshot> snap)
      : snap_(std::move(snap)) {}
  std::shared_ptr<const Snapshot> snap_;
};

}  // namespace ldphh

#endif  // LDPHH_STORE_REPLICA_STORE_H_
