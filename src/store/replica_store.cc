#include "src/store/replica_store.h"

#include <algorithm>
#include <utility>

#include "src/common/timer.h"
#include "src/obs/trace.h"

namespace ldphh {

namespace {

/// Active-prefix parts kept before folding the chain into one (each part
/// adds one map walk to every snapshot merge).
constexpr size_t kMaxActiveParts = 8;

}  // namespace

std::shared_ptr<const ReplicaStore::SegmentData> ReplicaStore::ConsolidateParts(
    const std::vector<std::shared_ptr<const SegmentData>>& parts) {
  auto merged = std::make_shared<SegmentData>();
  for (const auto& part : parts) {
    for (const auto& [key, entry] : part->entries) {
      const auto it = merged->entries.find(key);
      if (it == merged->entries.end() || entry.sequence > it->second.sequence) {
        merged->entries[key] = entry;
      }
    }
    for (const auto& [key, seq] : part->tombstones) {
      uint64_t& tomb = merged->tombstones[key];
      tomb = std::max(tomb, seq);
    }
  }
  merged->clean_bytes = parts.back()->clean_bytes;
  return merged;
}

ReplicaStore::ReplicaStore(std::string dir, ReplicaStoreOptions options)
    : dir_(std::move(dir)),
      options_(options),
      fs_(options.file_system != nullptr ? options.file_system
                                         : FileSystem::Default()) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  refreshes_ = reg.NewCounter("ldphh_replica_refreshes_total",
                              "Refresh passes (manual + background)");
  snapshots_installed_ =
      reg.NewCounter("ldphh_replica_snapshots_installed_total",
                     "Refreshes that advanced the snapshot");
  segment_races_ = reg.NewCounter(
      "ldphh_replica_segment_races_total",
      "MANIFEST re-reads forced by a segment deleted mid-refresh");
  segments_replayed_ = reg.NewCounter("ldphh_replica_segments_replayed_total",
                                      "Segment files parsed end to end");
  segment_cache_hits_ = reg.NewCounter("ldphh_replica_segment_cache_hits_total",
                                       "Sealed segments served from cache");
  incremental_replays_ = reg.NewCounter(
      "ldphh_replica_incremental_replays_total",
      "Active-segment replays resumed from the last clean offset");
  failed_refreshes_ = reg.NewCounter("ldphh_replica_failed_refreshes_total",
                                     "Background refreshes that errored");
  poll_duration_ns_ = reg.NewHistogram("ldphh_replica_poll_duration_ns",
                                       "Refresh (tail poll) latency", "ns");
  manifest_sequence_gauge_ =
      reg.NewGauge("ldphh_replica_manifest_sequence",
                   "MANIFEST generation of the current snapshot");
  lag_gauge_ = reg.NewGauge(
      "ldphh_replica_lag_generations",
      "Primary MANIFEST generation minus this replica's, at poll time",
      "generations");
  poll_spans_ = obs::SpanSampler::Global().Family("replica.poll");
}

StatusOr<std::unique_ptr<ReplicaStore>> ReplicaStore::Open(
    const std::string& dir, const ReplicaStoreOptions& options) {
  std::unique_ptr<ReplicaStore> replica(new ReplicaStore(dir, options));
  const std::string manifest_path = dir + "/" + kStoreManifestName;
  auto have_manifest_or = replica->fs_->FileExists(manifest_path);
  LDPHH_RETURN_IF_ERROR(have_manifest_or.status());
  if (!have_manifest_or.value()) {
    return Status::FailedPrecondition(
        "replica store: no MANIFEST in " + dir +
        " (primary not started yet?) — retry once the store exists");
  }
  auto refreshed_or = replica->Refresh();
  LDPHH_RETURN_IF_ERROR(refreshed_or.status());
  if (options.poll_interval.count() > 0) {
    replica->tailer_ = std::thread([r = replica.get()] { r->TailLoop(); });
  }
  // Admin-plane registrations, installed only once the first refresh
  // succeeded. Lag is a readiness matter (it heals by tailing, not by a
  // restart), so the check gates /readyz only.
  if (options.healthy_lag_bound > 0) {
    replica->health_ = obs::HealthRegistry::Global().Register(
        "replica:" + dir,
        [r = replica.get(), bound = options.healthy_lag_bound]() -> Status {
          const double lag = r->lag_gauge_->Value();
          if (lag > static_cast<double>(bound)) {
            return Status::FailedPrecondition(
                "replica lag " + std::to_string(static_cast<uint64_t>(lag)) +
                " generations exceeds bound " + std::to_string(bound));
          }
          return Status::OK();
        },
        /*readiness_only=*/true);
  }
  replica->statusz_ = obs::StatuszRegistry::Global().Register(
      "replica", [r = replica.get()](obs::JsonWriter& w) {
        const ReplicaStoreStats stats = r->Stats();
        w.BeginObject();
        w.Key("dir").String(r->dir_);
        w.Key("manifest_sequence").Uint(stats.manifest_sequence);
        w.Key("lag_generations")
            .Uint(static_cast<uint64_t>(r->lag_gauge_->Value()));
        w.Key("refreshes").Uint(stats.refreshes);
        w.Key("snapshots_installed").Uint(stats.snapshots_installed);
        w.Key("segment_races").Uint(stats.segment_races);
        w.Key("segments_replayed").Uint(stats.segments_replayed);
        w.Key("segment_cache_hits").Uint(stats.segment_cache_hits);
        w.Key("incremental_replays").Uint(stats.incremental_replays);
        w.Key("failed_refreshes").Uint(stats.failed_refreshes);
        w.EndObject();
      });
  return replica;
}

ReplicaStore::~ReplicaStore() {
  {
    MutexLock lk(&mu_);
    stop_ = true;
    stop_cv_.SignalAll();
  }
  if (tailer_.joinable()) tailer_.join();
}

void ReplicaStore::TailLoop() {
  mu_.Lock();
  while (!stop_) {
    // Sleep one poll interval, waking early only for stop. A timeout is the
    // normal "go poll" signal; a signal always means stop_ flipped.
    stop_cv_.TimedWait(options_.poll_interval);
    if (stop_) break;
    mu_.Unlock();
    const auto refreshed_or = Refresh();
    mu_.Lock();
    // A transient race already retried inside Refresh; what reaches here is
    // an I/O error (or the primary's directory vanishing). The tailer keeps
    // polling — the condition may heal — and the failure is on the record.
    if (!refreshed_or.ok()) failed_refreshes_->Increment();
  }
  mu_.Unlock();
}

std::shared_ptr<const ReplicaStore::Snapshot> ReplicaStore::CurrentSnapshot()
    const {
  MutexLock lk(&mu_);
  return snapshot_;
}

StatusOr<bool> ReplicaStore::Refresh() {
  MutexLock pass_lk(&refresh_mu_);
  obs::Span span(poll_spans_.get());
  const StatusOr<bool> refreshed = RefreshLocked(span);
  poll_duration_ns_->Observe(span.ElapsedNs());
  return refreshed;
}

StatusOr<bool> ReplicaStore::RefreshLocked(obs::Span& span) {
  refreshes_->Increment();
  const std::string manifest_path = dir_ + "/" + kStoreManifestName;
  uint64_t failed_sequence = 0;
  uint64_t failed_incarnation = 0;
  bool have_failed_sequence = false;
  for (int attempt = 0; attempt <= options_.max_refresh_retries; ++attempt) {
    StoreManifest manifest;
    {
      const obs::Span::ChildScope read = span.Child("manifest_read");
      LDPHH_RETURN_IF_ERROR(
          ReadStoreManifest(fs_, manifest_path, &manifest));
    }
    span.set_args(manifest.sequence, static_cast<uint64_t>(attempt));
    if (manifest.incarnation == 0) {
      // A v1 MANIFEST (pre-incarnation primary). Without the incarnation
      // id the replica cannot detect a rolled-back-and-reissued generation,
      // so tailing would be subtly unsafe — refuse loudly instead. Opening
      // the store once with the current binary installs a v2 MANIFEST
      // (recovery always installs one).
      return Status::FailedPrecondition(
          "replica store: MANIFEST in " + dir_ +
          " predates the incarnation id (v1) — open the store with the "
          "current binary once before tailing it");
    }
    if (have_failed_sequence && manifest.sequence == failed_sequence &&
        manifest.incarnation == failed_incarnation) {
      // The segment that vanished was listed by this very generation: that
      // is not a compaction race (deletion happens strictly after the next
      // install), it is a live segment missing — real corruption.
      return Status::Internal(
          "replica store: live segment missing under unchanged MANIFEST "
          "generation " +
          std::to_string(manifest.sequence) + " in " + dir_);
    }

    // A new incarnation (the primary re-opened — possibly after a power
    // loss rolled back MANIFESTs this replica observed) voids the cache:
    // recovery sweeps orphans and may reallocate their segment numbers.
    if (manifest.incarnation != cache_incarnation_) {
      sealed_cache_.clear();
      active_parts_.clear();
      cache_incarnation_ = manifest.incarnation;
    }

    const std::shared_ptr<const Snapshot> prev = CurrentSnapshot();
    // Replication lag as seen by this poll: the freshest generation on disk
    // is the primary's; ours is the snapshot still being served.
    lag_gauge_->Set(static_cast<double>(
        manifest.sequence -
        std::min(manifest.sequence,
                 prev != nullptr ? prev->manifest_sequence : 0)));
    // The fast path is only sound when the previous replay consumed the
    // whole active file it saw: a cut short of the raw size (a torn
    // in-flight record, or a stale read on a laggy shared filesystem)
    // must keep rebuilding until the tail reads clean.
    if (prev != nullptr && manifest.sequence == prev->manifest_sequence &&
        manifest.incarnation == prev->incarnation &&
        prev->active_clean_bytes == prev->active_raw_bytes) {
      // Same generation: only the active segment can have moved. Two cheap
      // stats make the steady-state idle poll nearly free. Any stat
      // failure — absence (listed-before-written, or the writer creating
      // the file under us) or a real error — skips the shortcut and falls
      // through to the full rebuild, which disambiguates robustly; a
      // quiet "no change" is only ever reported off a successful stat.
      auto size_or = fs_->FileSize(
          dir_ + "/" + StoreSegmentFileName(manifest.active_segment));
      if (size_or.ok() && size_or.value() == prev->active_raw_bytes) {
        return false;
      }
      if (!size_or.ok() && prev->active_raw_bytes == 0) {
        auto exists_or = fs_->FileExists(
            dir_ + "/" + StoreSegmentFileName(manifest.active_segment));
        if (exists_or.ok() && !exists_or.value()) return false;
      }
    }

    std::shared_ptr<const Snapshot> next;
    bool active_was_missing = false;
    Status st;
    {
      const obs::Span::ChildScope load = span.Child("load_snapshot");
      st = LoadSnapshot(manifest, &next, &active_was_missing);
    }
    if (st.code() == StatusCode::kOutOfRange) {
      // A listed segment vanished before it could be pinned: the primary
      // compacted past us. The MANIFEST installed before that deletion
      // names the replacement — re-read it and retry on the next
      // generation.
      failed_sequence = manifest.sequence;
      failed_incarnation = manifest.incarnation;
      have_failed_sequence = true;
      segment_races_->Increment();
      continue;
    }
    LDPHH_RETURN_IF_ERROR(st);

    if (active_was_missing) {
      // An un-openable active segment is ambiguous: listed-before-written
      // (fine — the snapshot is simply empty of it) or sealed-and-compacted
      // under a stale manifest (the snapshot would silently miss its
      // records). Deletions happen strictly after the next generation's
      // install, so re-reading the MANIFEST decides: unchanged generation
      // proves the segment was never written; a moved one means go around.
      StoreManifest check;
      LDPHH_RETURN_IF_ERROR(ReadStoreManifest(fs_, manifest_path, &check));
      if (check.sequence != manifest.sequence ||
          check.incarnation != manifest.incarnation) {
        segment_races_->Increment();
        continue;
      }
    }

    // Evict cached segments the new manifest no longer lists; pinned
    // snapshots keep serving the parsed data until their readers let go.
    for (auto it = sealed_cache_.begin(); it != sealed_cache_.end();) {
      if (manifest.live.count(it->first) == 0) {
        it = sealed_cache_.erase(it);
      } else {
        ++it;
      }
    }

    const size_t installed_entries = next->entries.size();
    {
      MutexLock lk(&mu_);
      snapshot_ = std::move(next);
    }
    snapshots_installed_->Increment();
    manifest_sequence_gauge_->Set(static_cast<double>(manifest.sequence));
    lag_gauge_->Set(0.0);  // Caught up to the generation this poll read.
    obs::TraceRing::Global().Record("replica", "snapshot_install", dir_,
                                    manifest.sequence, installed_entries);
    return true;
  }
  return Status::ResourceExhausted(
      "replica store: " + std::to_string(options_.max_refresh_retries) +
      " refresh retries exhausted by compaction churn in " + dir_);
}

Status ReplicaStore::LoadSnapshot(const StoreManifest& manifest,
                                  std::shared_ptr<const Snapshot>* out,
                                  bool* active_was_missing) {
  auto snap = std::make_shared<Snapshot>();
  snap->manifest_sequence = manifest.sequence;
  snap->incarnation = manifest.incarnation;
  snap->active_segment = manifest.active_segment;
  *active_was_missing = false;

  // Phase 1: pin every segment of this generation by opening it — an open
  // handle keeps serving after the primary's compaction unlinks the file,
  // so the only race window left is MANIFEST-read to here (microseconds),
  // not the whole replay.
  struct Pinned {
    uint64_t segment = 0;
    bool is_active = false;
    std::string path;
    std::unique_ptr<SequentialFile> file;
  };
  std::vector<Pinned> to_replay;
  for (uint64_t seg : manifest.live) {
    const bool is_active = seg == manifest.active_segment;
    if (!is_active) {
      const auto cached = sealed_cache_.find(seg);
      if (cached != sealed_cache_.end()) {
        snap->pinned.push_back(cached->second);
        segment_cache_hits_->Increment();
        continue;
      }
    }
    std::string path = dir_ + "/" + StoreSegmentFileName(seg);
    auto file_or = fs_->NewSequentialFile(path);
    for (int attempt = 0; !file_or.ok(); ++attempt) {
      // Only genuine absence may take the lenient paths below; an open
      // that keeps failing with the file present (fd exhaustion,
      // permissions) must surface, not silently publish a snapshot
      // missing records.
      auto exists_or = fs_->FileExists(path);
      LDPHH_RETURN_IF_ERROR(exists_or.status());
      if (!exists_or.value()) break;
      if (attempt >= 3) return file_or.status();
      // The file exists *now* but the open missed it: the writer created
      // it between our MANIFEST read and the open (a fresh active segment
      // is listed before it is written, invariant I2). Re-open.
      file_or = fs_->NewSequentialFile(path);
    }
    if (!file_or.ok()) {
      if (is_active) {
        // Either listed-before-written (invariant I2: a legitimately empty
        // active segment) or a stale manifest whose active was sealed and
        // compacted away behind us — the caller's post-build MANIFEST
        // re-read tells the two apart.
        *active_was_missing = true;
        continue;
      }
      // A sealed segment that vanished went to compaction: the generation
      // that replaced it is already installed — retry there.
      return Status::OutOfRange("replica store: segment vanished: " + path);
    }
    to_replay.push_back(
        Pinned{seg, is_active, std::move(path), std::move(file_or).value()});
  }

  // Phase 2: replay the pinned handles. No deletion race is possible now;
  // any failure is real corruption (or I/O trouble), not the primary
  // moving on.
  for (Pinned& p : to_replay) {
    // The open-time size is the snapshot's active cut: if the writer
    // appends while we scan, the next refresh sees a grown file and
    // rebuilds — erring toward one spurious rebuild, never toward a
    // missed record.
    if (p.is_active) snap->active_raw_bytes = p.file->size();
    auto data = std::make_shared<SegmentData>();
    StoreSegmentReplayResult replay;
    uint64_t resumed_from = 0;
    bool resumed = false;
    if (p.is_active && !active_parts_.empty() &&
        active_parts_segment_ == p.segment &&
        p.file->size() >= active_parts_.back()->clean_bytes) {
      // Incremental resume: within one incarnation the active segment is
      // append-only (only recovery truncates, and recovery changes the
      // incarnation, which voided this cache above), so the parts parsed
      // so far are still exact — share them into the snapshot untouched
      // and Skip the verified bytes, parsing only what the writer appended
      // since the previous pass into a fresh delta part. Duplicate keys
      // across parts resolve by sequence in the snapshot merge below,
      // exactly as across segments. A torn record seen last pass sits at
      // clean_bytes and is re-read here, now complete.
      resumed_from = active_parts_.back()->clean_bytes;
      resumed = true;
      LDPHH_RETURN_IF_ERROR(p.file->Skip(resumed_from));
      incremental_replays_->Increment();
    }
    LDPHH_RETURN_IF_ERROR(ReplayStoreSegment(
        std::move(p.file), p.path, p.segment,
        /*tolerate_damaged_tail=*/p.is_active, &data->entries,
        &data->tombstones, &replay));
    // clean_end counts from the (absolute) cursor, so an empty tail keeps
    // the resumed offset.
    data->clean_bytes = std::max(resumed_from, replay.clean_end);
    segments_replayed_->Increment();
    // A segment read while active may be a prefix of its sealed form;
    // cache only what is provably complete (sealed when listed). The
    // active prefix is kept as the parts chain for the incremental resume.
    if (p.is_active) {
      active_parts_segment_ = p.segment;
      if (!resumed) active_parts_.clear();
      // An advanced-nothing poll (manifest churn without appends) adds no
      // part; the existing chain already covers the clean prefix.
      if (!resumed || data->clean_bytes > resumed_from) {
        active_parts_.push_back(std::move(data));
      }
      // Bound the chain so snapshot merges stay O(segments): past the cap,
      // fold into one part — a fresh object (published snapshots keep the
      // old parts pinned), amortized one prefix copy per cap-many polls.
      if (active_parts_.size() > kMaxActiveParts) {
        active_parts_ = {ConsolidateParts(active_parts_)};
      }
      for (const auto& part : active_parts_) snap->pinned.push_back(part);
      snap->active_clean_bytes =
          active_parts_.empty() ? 0 : active_parts_.back()->clean_bytes;
    } else {
      snap->pinned.push_back(data);
      sealed_cache_[p.segment] = std::move(data);
    }
  }

  // Merge the pinned segments: per key the highest sequence wins, exactly
  // the primary's replay rule; a tombstone with a higher sequence shadows
  // the entry. Pointers into the pinned data — no blob is copied.
  std::map<uint64_t, uint64_t> tombstones;
  for (const auto& data : snap->pinned) {
    for (const auto& [key, entry] : data->entries) {
      const auto it = snap->entries.find(key);
      if (it == snap->entries.end() || entry.sequence > it->second->sequence) {
        snap->entries[key] = &entry;
      }
    }
    for (const auto& [key, seq] : data->tombstones) {
      uint64_t& tomb = tombstones[key];
      tomb = std::max(tomb, seq);
    }
  }
  for (const auto& [key, seq] : tombstones) {
    const auto it = snap->entries.find(key);
    if (it != snap->entries.end() && seq > it->second->sequence) {
      snap->entries.erase(it);
    }
  }

  *out = std::move(snap);
  return Status::OK();
}

// ------------------------------------------------------------------- reads --

ReplicaStore::PinnedView ReplicaStore::Pin() const {
  return PinnedView(CurrentSnapshot());
}

Status ReplicaStore::PinnedView::Get(uint64_t key, std::string* blob) const {
  if (snap_ == nullptr) {
    return Status::FailedPrecondition("replica store: no snapshot yet");
  }
  const auto it = snap_->entries.find(key);
  if (it == snap_->entries.end()) {
    return Status::OutOfRange("replica store: no entry for key " +
                              std::to_string(key));
  }
  *blob = it->second->blob;
  return Status::OK();
}

bool ReplicaStore::PinnedView::Contains(uint64_t key) const {
  return snap_ != nullptr && snap_->entries.count(key) != 0;
}

std::vector<uint64_t> ReplicaStore::PinnedView::Keys() const {
  std::vector<uint64_t> keys;
  if (snap_ == nullptr) return keys;
  keys.reserve(snap_->entries.size());
  for (const auto& [key, entry] : snap_->entries) keys.push_back(key);
  return keys;
}

uint64_t ReplicaStore::PinnedView::manifest_sequence() const {
  return snap_ != nullptr ? snap_->manifest_sequence : 0;
}

Status ReplicaStore::Get(uint64_t key, std::string* blob) const {
  return Pin().Get(key, blob);
}

bool ReplicaStore::Contains(uint64_t key) const {
  return Pin().Contains(key);
}

std::vector<uint64_t> ReplicaStore::Keys() const { return Pin().Keys(); }

uint64_t ReplicaStore::manifest_sequence() const {
  return Pin().manifest_sequence();
}

ReplicaStoreStats ReplicaStore::Stats() const {
  ReplicaStoreStats s;
  s.refreshes = refreshes_->Value();
  s.snapshots_installed = snapshots_installed_->Value();
  s.segment_races = segment_races_->Value();
  s.segments_replayed = segments_replayed_->Value();
  s.segment_cache_hits = segment_cache_hits_->Value();
  s.incremental_replays = incremental_replays_->Value();
  s.failed_refreshes = failed_refreshes_->Value();
  s.manifest_sequence = manifest_sequence();
  return s;
}

}  // namespace ldphh
