/// \file workload.h
/// \brief Workload generators for tests, examples, and benchmarks.
///
/// The paper's evaluation is parameterized by (n, |X|, eps, beta); the
/// generators here produce the distributed databases the experiments run
/// on: planted heavy hitters over random backgrounds (the worst-case shape
/// the theorems are stated for), Zipf-distributed populations (the shape of
/// real telemetry), and string workloads (URLs / words) for the examples.

#ifndef LDPHH_WORKLOAD_WORKLOAD_H_
#define LDPHH_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bit_util.h"

namespace ldphh {

/// A generated workload: the database plus the ground-truth heavy items.
struct Workload {
  std::vector<DomainItem> database;
  /// Planted/true heavy items with their exact counts, descending.
  std::vector<std::pair<DomainItem, uint64_t>> heavy;
};

/// \brief Plants heavy hitters over a background of (almost surely) unique
/// random items.
///
/// \param n             number of users.
/// \param domain_bits   item width.
/// \param heavy_fractions  one entry per heavy item: its share of n.
/// \param seed          determinism.
/// The database is shuffled, so heavy users are interleaved.
Workload MakePlantedWorkload(uint64_t n, int domain_bits,
                             const std::vector<double>& heavy_fractions,
                             uint64_t seed);

/// \brief Zipf(s) workload over \p num_items random distinct items: item of
/// rank r receives weight r^{-s}.
Workload MakeZipfWorkload(uint64_t n, int domain_bits, uint64_t num_items,
                          double s, uint64_t seed);

/// \brief String workload: each (string, count) pair contributes count
/// users holding the string's fixed-width encoding. Shuffled.
Workload MakeStringWorkload(const std::vector<std::pair<std::string, uint64_t>>& rows,
                            int domain_bits, uint64_t seed);

}  // namespace ldphh

#endif  // LDPHH_WORKLOAD_WORKLOAD_H_
