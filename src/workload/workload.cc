#include "src/workload/workload.h"

#include <algorithm>
#include <cmath>

#include "src/common/random.h"
#include "src/common/status.h"

namespace ldphh {

namespace {

DomainItem RandomItem(int domain_bits, Rng& rng) {
  DomainItem x;
  for (int i = 0; i < 4; ++i) x.limbs[static_cast<size_t>(i)] = rng();
  x.Truncate(domain_bits);
  return x;
}

void Shuffle(std::vector<DomainItem>& v, Rng& rng) {
  for (size_t i = v.size(); i > 1; --i) {
    const size_t j = rng.UniformU64(i);
    std::swap(v[i - 1], v[j]);
  }
}

void SortHeavyDesc(Workload& w) {
  std::sort(w.heavy.begin(), w.heavy.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
}

}  // namespace

Workload MakePlantedWorkload(uint64_t n, int domain_bits,
                             const std::vector<double>& heavy_fractions,
                             uint64_t seed) {
  LDPHH_CHECK(n >= 1, "MakePlantedWorkload: n >= 1");
  Rng rng(seed);
  Workload w;
  w.database.reserve(static_cast<size_t>(n));

  uint64_t used = 0;
  for (double frac : heavy_fractions) {
    LDPHH_CHECK(frac > 0.0 && frac < 1.0, "heavy fraction in (0,1)");
    const uint64_t count = static_cast<uint64_t>(frac * static_cast<double>(n));
    if (count == 0 || used + count > n) continue;
    const DomainItem item = RandomItem(domain_bits, rng);
    for (uint64_t i = 0; i < count; ++i) w.database.push_back(item);
    w.heavy.emplace_back(item, count);
    used += count;
  }
  while (w.database.size() < n) {
    w.database.push_back(RandomItem(domain_bits, rng));
  }
  Shuffle(w.database, rng);
  SortHeavyDesc(w);
  return w;
}

Workload MakeZipfWorkload(uint64_t n, int domain_bits, uint64_t num_items,
                          double s, uint64_t seed) {
  LDPHH_CHECK(num_items >= 1, "MakeZipfWorkload: num_items >= 1");
  Rng rng(seed);
  Workload w;
  w.database.reserve(static_cast<size_t>(n));

  std::vector<DomainItem> items(static_cast<size_t>(num_items));
  for (auto& item : items) item = RandomItem(domain_bits, rng);

  // Cumulative Zipf weights.
  std::vector<double> cdf(static_cast<size_t>(num_items));
  double acc = 0.0;
  for (uint64_t r = 0; r < num_items; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -s);
    cdf[static_cast<size_t>(r)] = acc;
  }
  std::vector<uint64_t> counts(static_cast<size_t>(num_items), 0);
  for (uint64_t i = 0; i < n; ++i) {
    const double u = rng.UniformDouble() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const size_t r = static_cast<size_t>(it - cdf.begin());
    const size_t idx = std::min(r, items.size() - 1);
    w.database.push_back(items[idx]);
    ++counts[idx];
  }
  for (uint64_t r = 0; r < num_items; ++r) {
    if (counts[static_cast<size_t>(r)] > 0) {
      w.heavy.emplace_back(items[static_cast<size_t>(r)],
                           counts[static_cast<size_t>(r)]);
    }
  }
  Shuffle(w.database, rng);
  SortHeavyDesc(w);
  return w;
}

Workload MakeStringWorkload(
    const std::vector<std::pair<std::string, uint64_t>>& rows, int domain_bits,
    uint64_t seed) {
  Rng rng(seed);
  Workload w;
  for (const auto& [str, count] : rows) {
    const DomainItem item = DomainItem::FromString(str, domain_bits);
    for (uint64_t i = 0; i < count; ++i) w.database.push_back(item);
    w.heavy.emplace_back(item, count);
  }
  Shuffle(w.database, rng);
  SortHeavyDesc(w);
  return w;
}

}  // namespace ldphh
