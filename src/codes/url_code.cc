#include "src/codes/url_code.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/math_util.h"

namespace ldphh {

UrlCode::UrlCode(const UrlCodeParams& params, int chunk_symbols, int message_bytes,
                 ReedSolomon rs, Expander expander, HashFamily hashes)
    : params_(params),
      chunk_symbols_(chunk_symbols),
      message_bytes_(message_bytes),
      rs_(std::make_shared<ReedSolomon>(std::move(rs))),
      expander_(std::make_shared<Expander>(std::move(expander))),
      hashes_(std::make_shared<HashFamily>(std::move(hashes))) {
  hash_bits_ = CeilLog2(static_cast<uint64_t>(params.hash_range));
  payload_bits_ = 8 * chunk_symbols_ + params.expander_degree * hash_bits_;
}

StatusOr<UrlCode> UrlCode::Create(const UrlCodeParams& params, uint64_t seed) {
  const auto& p = params;
  if (p.domain_bits < 8 || p.domain_bits > 256) {
    return Status::InvalidArgument("UrlCode: domain_bits must be in [8, 256]");
  }
  if (p.num_coords < 4 || p.num_coords % 2 != 0) {
    return Status::InvalidArgument("UrlCode: num_coords must be even, >= 4");
  }
  if (p.hash_range < 4 ||
      NextPow2(static_cast<uint64_t>(p.hash_range)) !=
          static_cast<uint64_t>(p.hash_range) ||
      p.hash_range > 65536) {
    return Status::InvalidArgument("UrlCode: hash_range must be a power of two");
  }
  if (p.expander_degree < 2 || p.expander_degree % 2 != 0) {
    return Status::InvalidArgument("UrlCode: expander_degree must be even");
  }

  const int message_bytes = (p.domain_bits + 7) / 8;
  // Rate <= 1/2 inner code: chunk size so that M * chunk >= 2 * message.
  const int chunk_symbols =
      std::max(1, (2 * message_bytes + p.num_coords - 1) / p.num_coords);
  const int code_symbols = p.num_coords * chunk_symbols;
  if (code_symbols > 255) {
    return Status::InvalidArgument(
        "UrlCode: M * chunk exceeds the RS block-length limit of 255");
  }
  const int payload_bits =
      8 * chunk_symbols + p.expander_degree * CeilLog2(static_cast<uint64_t>(
                                                  p.hash_range));
  if (payload_bits > 64) {
    return Status::InvalidArgument(
        "UrlCode: payload exceeds 64 bits; lower Y, d, or raise M");
  }

  Rng seeder(seed);
  auto expander = Expander::Sample(p.num_coords, p.expander_degree,
                                   p.lambda_fraction, seeder());
  if (!expander.ok()) return expander.status();

  HashFamily hashes(p.num_coords, /*k=*/2,
                    static_cast<uint64_t>(p.hash_range), seeder());

  return UrlCode(p, chunk_symbols, message_bytes,
                 ReedSolomon(code_symbols, message_bytes),
                 std::move(expander).value(), std::move(hashes));
}

UrlCode::Codeword UrlCode::Encode(const DomainItem& x) const {
  const int m_count = params_.num_coords;
  const int d = params_.expander_degree;
  Codeword cw;
  cw.y.resize(static_cast<size_t>(m_count));
  cw.symbols.resize(static_cast<size_t>(m_count));

  for (int m = 0; m < m_count; ++m) {
    cw.y[static_cast<size_t>(m)] = static_cast<uint16_t>(hashes_->at(m)(x));
  }

  const std::vector<uint8_t> ecc = rs_->Encode(x.ToBytes(message_bytes_ * 8));
  for (int m = 0; m < m_count; ++m) {
    Symbol& s = cw.symbols[static_cast<size_t>(m)];
    s.chunk.assign(ecc.begin() + m * chunk_symbols_,
                   ecc.begin() + (m + 1) * chunk_symbols_);
    s.nbr_hash.resize(static_cast<size_t>(d));
    for (int slot = 0; slot < d; ++slot) {
      s.nbr_hash[static_cast<size_t>(slot)] =
          cw.y[static_cast<size_t>(expander_->Neighbor(m, slot))];
    }
  }
  return cw;
}

uint64_t UrlCode::PackPayload(const Symbol& s) const {
  uint64_t bits = 0;
  int off = 0;
  for (int i = 0; i < chunk_symbols_; ++i) {
    bits |= static_cast<uint64_t>(s.chunk[static_cast<size_t>(i)]) << off;
    off += 8;
  }
  for (int slot = 0; slot < params_.expander_degree; ++slot) {
    bits |= static_cast<uint64_t>(s.nbr_hash[static_cast<size_t>(slot)]) << off;
    off += hash_bits_;
  }
  return bits;
}

UrlCode::Symbol UrlCode::UnpackPayload(uint64_t bits) const {
  Symbol s;
  s.chunk.resize(static_cast<size_t>(chunk_symbols_));
  int off = 0;
  for (int i = 0; i < chunk_symbols_; ++i) {
    s.chunk[static_cast<size_t>(i)] = static_cast<uint8_t>(bits >> off);
    off += 8;
  }
  const uint64_t hash_mask = (uint64_t{1} << hash_bits_) - 1;
  s.nbr_hash.resize(static_cast<size_t>(params_.expander_degree));
  for (int slot = 0; slot < params_.expander_degree; ++slot) {
    s.nbr_hash[static_cast<size_t>(slot)] =
        static_cast<uint16_t>((bits >> off) & hash_mask);
    off += hash_bits_;
  }
  return s;
}

std::vector<DomainItem> UrlCode::Decode(
    const std::vector<std::vector<ListEntry>>& lists, Rng& rng) const {
  const int m_count = params_.num_coords;
  const int y_range = params_.hash_range;
  const int d = params_.expander_degree;
  LDPHH_CHECK(static_cast<int>(lists.size()) == m_count,
              "UrlCode::Decode: need one list per coordinate");

  // Per-coordinate map y -> unpacked symbol (first entry wins: uniqueness).
  std::vector<std::unordered_map<uint16_t, Symbol>> sym(
      static_cast<size_t>(m_count));
  for (int m = 0; m < m_count; ++m) {
    for (const ListEntry& e : lists[static_cast<size_t>(m)]) {
      if (e.y >= y_range) continue;
      sym[static_cast<size_t>(m)].emplace(e.y, UnpackPayload(e.payload));
    }
  }

  // Layered graph on [M] x [Y]; vertex id = m * Y + y. An expander edge
  // (m, slot) <-> (m2, slot2) induces a graph edge between (m, y) and
  // (m2, y2) iff both symbols name each other in the paired slots.
  Graph graph(m_count * y_range);
  auto vid = [&](int m, int y) { return m * y_range + y; };
  for (int m = 0; m < m_count; ++m) {
    for (const auto& [y, s] : sym[static_cast<size_t>(m)]) {
      for (int slot = 0; slot < d; ++slot) {
        const int m2 = expander_->Neighbor(m, slot);
        const int slot2 = expander_->PairedSlot(m, slot);
        // Add each undirected edge exactly once.
        if (m2 < m || (m2 == m && slot2 < slot)) continue;
        const uint16_t y2 = s.nbr_hash[static_cast<size_t>(slot)];
        const auto it2 = sym[static_cast<size_t>(m2)].find(y2);
        if (it2 == sym[static_cast<size_t>(m2)].end()) continue;
        if (it2->second.nbr_hash[static_cast<size_t>(slot2)] != y) continue;
        graph.AddEdge(vid(m, y), vid(m2, y2));
      }
    }
  }

  // Attempts to decode one vertex set as a codeword cluster: peel low
  // intra-cluster degrees, read one chunk per layer (erasure when missing
  // or ambiguous), RS-decode, and verify against the input lists.
  const int min_layers =
      static_cast<int>((1.0 - params_.alpha) * static_cast<double>(m_count));
  auto try_cluster = [&](const std::vector<int>& cluster, bool peel,
                         DomainItem* out_item) -> bool {
    if (static_cast<int>(cluster.size()) < std::max(2, min_layers)) return false;

    // Peel vertices whose intra-cluster degree is <= d/2 (bad-coordinate
    // debris), as in the Appendix B decoder. Callers retry without peeling
    // when this fails: with parallel expander edges (likely at small M) a
    // single missing layer can cascade the peel through its double-edge
    // neighbors, and the un-peeled read is then the better shot.
    std::vector<bool> in_cluster(static_cast<size_t>(graph.NumVertices()), false);
    for (int v : cluster) in_cluster[static_cast<size_t>(v)] = true;
    std::vector<int> kept;
    for (int v : cluster) {
      int deg = 0;
      for (int w : graph.Neighbors(v)) {
        if (in_cluster[static_cast<size_t>(w)]) ++deg;
      }
      if (!peel || deg > d / 2) kept.push_back(v);
    }

    // One vertex per layer; ambiguous or missing layers become erasures.
    std::vector<int> layer_y(static_cast<size_t>(m_count), -1);
    std::vector<bool> layer_conflict(static_cast<size_t>(m_count), false);
    for (int v : kept) {
      const int m = v / y_range;
      const int y = v % y_range;
      if (layer_y[static_cast<size_t>(m)] >= 0) {
        layer_conflict[static_cast<size_t>(m)] = true;
      } else {
        layer_y[static_cast<size_t>(m)] = y;
      }
    }

    std::vector<uint8_t> received(
        static_cast<size_t>(m_count * chunk_symbols_), 0);
    std::vector<int> erasures;
    for (int m = 0; m < m_count; ++m) {
      const int y = layer_y[static_cast<size_t>(m)];
      const Symbol* s = nullptr;
      if (y >= 0 && !layer_conflict[static_cast<size_t>(m)]) {
        const auto it = sym[static_cast<size_t>(m)].find(static_cast<uint16_t>(y));
        if (it != sym[static_cast<size_t>(m)].end()) s = &it->second;
      }
      if (s == nullptr) {
        for (int j = 0; j < chunk_symbols_; ++j) {
          erasures.push_back(m * chunk_symbols_ + j);
        }
      } else {
        for (int j = 0; j < chunk_symbols_; ++j) {
          received[static_cast<size_t>(m * chunk_symbols_ + j)] =
              s->chunk[static_cast<size_t>(j)];
        }
      }
    }

    auto decoded = rs_->Decode(received, erasures);
    if (!decoded.ok()) return false;
    DomainItem candidate =
        DomainItem::FromBytes(decoded.value(), params_.domain_bits);

    // Verification: the candidate's true encoding must agree with the input
    // lists on enough coordinates (hash value present and payload equal).
    const Codeword cw = Encode(candidate);
    int agree = 0;
    for (int m = 0; m < m_count; ++m) {
      const auto it =
          sym[static_cast<size_t>(m)].find(cw.y[static_cast<size_t>(m)]);
      if (it == sym[static_cast<size_t>(m)].end()) continue;
      if (PackPayload(it->second) ==
          PackPayload(cw.symbols[static_cast<size_t>(m)])) {
        ++agree;
      }
    }
    if (100 * agree < params_.verify_min_agree_percent * m_count) return false;
    *out_item = candidate;
    return true;
  };

  // Two-level clustering: a connected component is usually one clean
  // codeword cluster (the expander copy of Appendix B); only when it fails
  // to decode — e.g. two heavy hitters glued by stray edges — is it split
  // into spectral clusters (the Theorem B.3 step) and retried.
  std::vector<DomainItem> out;
  DomainItem item;
  for (const auto& comp : graph.ConnectedComponents()) {
    if (static_cast<int>(comp.size()) < std::max(2, min_layers)) continue;
    if (try_cluster(comp, /*peel=*/true, &item) ||
        try_cluster(comp, /*peel=*/false, &item)) {
      out.push_back(item);
      continue;
    }
    ClusterOptions copts;
    copts.min_split_size = std::max(4, m_count / 2);
    Graph sub = graph.InducedSubgraph(comp);
    for (const auto& sub_cluster : FindSpectralClusters(sub, copts, rng)) {
      std::vector<int> orig;
      orig.reserve(sub_cluster.size());
      for (int v : sub_cluster) orig.push_back(comp[static_cast<size_t>(v)]);
      if (try_cluster(orig, /*peel=*/true, &item) ||
          try_cluster(orig, /*peel=*/false, &item)) {
        out.push_back(item);
      }
    }
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ldphh
