#include "src/codes/reed_solomon.h"

#include <algorithm>

#include "src/codes/gf256.h"

namespace ldphh {

namespace {

// Polynomials over GF(2^8), low-order coefficient first.
using Poly = std::vector<uint8_t>;

Poly PolyMul(const Poly& a, const Poly& b) {
  Poly out(a.size() + b.size() - 1, 0);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (size_t j = 0; j < b.size(); ++j) {
      out[i + j] = GF256::Add(out[i + j], GF256::Mul(a[i], b[j]));
    }
  }
  return out;
}

uint8_t PolyEval(const Poly& p, uint8_t x) {
  uint8_t acc = 0;
  for (size_t i = p.size(); i-- > 0;) {
    acc = GF256::Add(GF256::Mul(acc, x), p[i]);
  }
  return acc;
}

// Formal derivative in characteristic 2: odd-degree terms survive.
Poly PolyDerivative(const Poly& p) {
  Poly out;
  for (size_t i = 1; i < p.size(); i += 2) {
    out.resize(i, 0);
    out[i - 1] = p[i];
  }
  if (out.empty()) out.push_back(0);
  return out;
}

int PolyDegree(const Poly& p) {
  for (size_t i = p.size(); i-- > 0;) {
    if (p[i] != 0) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

ReedSolomon::ReedSolomon(int n, int k) : n_(n), k_(k) {
  LDPHH_CHECK(n >= 2 && n <= 255, "ReedSolomon: n must be in [2, 255]");
  LDPHH_CHECK(k >= 1 && k < n, "ReedSolomon: k must be in [1, n)");
  // g(x) = prod_{i=1..n-k} (x + alpha^i), low-order first.
  generator_ = {1};
  for (int i = 1; i <= n - k; ++i) {
    generator_ = PolyMul(generator_, Poly{GF256::AlphaPow(i), 1});
  }
}

std::vector<uint8_t> ReedSolomon::Encode(const std::vector<uint8_t>& message) const {
  LDPHH_CHECK(static_cast<int>(message.size()) == k_,
              "ReedSolomon::Encode: message length != k");
  const int parity_len = n_ - k_;
  // Long-divide m(x) * x^{n-k} by g(x); the remainder is the parity block.
  // Internal coefficient layout: parity occupies x^0..x^{n-k-1}, message
  // occupies x^{n-k}..x^{n-1}.
  std::vector<uint8_t> rem(parity_len, 0);
  for (int i = k_ - 1; i >= 0; --i) {
    // Bring in the next message coefficient (from the top).
    const uint8_t feedback = GF256::Add(message[i], rem[parity_len - 1]);
    for (int j = parity_len - 1; j >= 1; --j) {
      rem[j] = GF256::Add(rem[j - 1], GF256::Mul(feedback, generator_[j]));
    }
    rem[0] = GF256::Mul(feedback, generator_[0]);
  }
  std::vector<uint8_t> out(message);
  out.insert(out.end(), rem.begin(), rem.end());
  return out;  // [message (k) | parity (n-k)], parity low-order reversed-free.
}

StatusOr<std::vector<uint8_t>> ReedSolomon::Decode(
    const std::vector<uint8_t>& received, const std::vector<int>& erasures) const {
  if (static_cast<int>(received.size()) != n_) {
    return Status::InvalidArgument("ReedSolomon::Decode: wrong length");
  }
  const int two_t = n_ - k_;
  if (static_cast<int>(erasures.size()) > two_t) {
    return Status::DecodeFailure("too many erasures");
  }

  // Map external position p to internal coefficient index:
  // message position p < k  -> x^{p + (n-k)};  parity position -> x^{p - k}.
  auto coeff_index = [&](int p) { return p < k_ ? p + two_t : p - k_; };
  Poly r(n_, 0);
  for (int p = 0; p < n_; ++p) r[coeff_index(p)] = received[p];

  // Syndromes S_i = r(alpha^i), i = 1..2t.
  Poly synd(two_t, 0);
  bool all_zero = true;
  for (int i = 1; i <= two_t; ++i) {
    synd[i - 1] = PolyEval(r, GF256::AlphaPow(i));
    if (synd[i - 1] != 0) all_zero = false;
  }
  if (all_zero && erasures.empty()) {
    return std::vector<uint8_t>(received.begin(), received.begin() + k_);
  }

  // Erasure locator Gamma(x) = prod (1 + alpha^{idx} x).
  Poly gamma = {1};
  for (int p : erasures) {
    if (p < 0 || p >= n_) return Status::InvalidArgument("erasure out of range");
    gamma = PolyMul(gamma, Poly{1, GF256::AlphaPow(coeff_index(p))});
  }
  const int s = static_cast<int>(erasures.size());

  // Modified syndromes T(x) = S(x) * Gamma(x) mod x^{2t}.
  Poly t_synd = PolyMul(synd, gamma);
  t_synd.resize(two_t, 0);

  // Berlekamp-Massey on the modified syndromes for the error locator sigma.
  Poly sigma = {1};
  Poly prev = {1};
  int length = 0;
  int m = 1;
  uint8_t b = 1;
  for (int i = s; i < two_t; ++i) {
    uint8_t delta = t_synd[i];
    for (int j = 1; j <= length; ++j) {
      if (j < static_cast<int>(sigma.size())) {
        delta = GF256::Add(delta, GF256::Mul(sigma[j], t_synd[i - j]));
      }
    }
    if (delta == 0) {
      ++m;
    } else if (2 * length <= i - s) {
      Poly tmp = sigma;
      const uint8_t coef = GF256::Div(delta, b);
      Poly shift(static_cast<size_t>(m), 0);
      shift.push_back(coef);
      Poly adj = PolyMul(shift, prev);
      if (adj.size() > sigma.size()) sigma.resize(adj.size(), 0);
      for (size_t j = 0; j < adj.size(); ++j) sigma[j] = GF256::Add(sigma[j], adj[j]);
      length = i - s + 1 - length;
      prev = tmp;
      b = delta;
      m = 1;
    } else {
      const uint8_t coef = GF256::Div(delta, b);
      Poly shift(static_cast<size_t>(m), 0);
      shift.push_back(coef);
      Poly adj = PolyMul(shift, prev);
      if (adj.size() > sigma.size()) sigma.resize(adj.size(), 0);
      for (size_t j = 0; j < adj.size(); ++j) sigma[j] = GF256::Add(sigma[j], adj[j]);
      ++m;
    }
  }
  if (2 * length > two_t - s) {
    return Status::DecodeFailure("error count exceeds capability");
  }

  // Errata locator psi = sigma * gamma; evaluator Omega = S * psi mod x^{2t}.
  Poly psi = PolyMul(sigma, gamma);
  Poly omega = PolyMul(synd, psi);
  omega.resize(two_t, 0);

  // Chien search: find positions j with psi(alpha^{-j}) == 0.
  std::vector<int> errata;  // internal coefficient indices
  for (int j = 0; j < n_; ++j) {
    const uint8_t x_inv = GF256::AlphaPow(255 - (j % 255));
    if (PolyEval(psi, x_inv) == 0) errata.push_back(j);
  }
  if (static_cast<int>(errata.size()) != PolyDegree(psi)) {
    return Status::DecodeFailure("locator root count mismatch");
  }

  // Forney: e_j = Omega(X_j^{-1}) / psi'(X_j^{-1})   (b0 = 1 convention).
  const Poly psi_deriv = PolyDerivative(psi);
  for (int j : errata) {
    const uint8_t x_inv = GF256::AlphaPow(255 - (j % 255));
    const uint8_t denom = PolyEval(psi_deriv, x_inv);
    if (denom == 0) return Status::DecodeFailure("Forney derivative zero");
    const uint8_t magnitude = GF256::Div(PolyEval(omega, x_inv), denom);
    r[j] = GF256::Add(r[j], magnitude);
  }

  // Verify: all syndromes of the corrected word must vanish.
  for (int i = 1; i <= two_t; ++i) {
    if (PolyEval(r, GF256::AlphaPow(i)) != 0) {
      return Status::DecodeFailure("post-correction syndrome nonzero");
    }
  }

  std::vector<uint8_t> message(static_cast<size_t>(k_));
  for (int p = 0; p < k_; ++p) message[p] = r[coeff_index(p)];
  return message;
}

}  // namespace ldphh
