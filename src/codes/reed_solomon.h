/// \file reed_solomon.h
/// \brief Systematic Reed-Solomon codec over GF(2^8) with errors-and-erasures
/// decoding (Berlekamp-Massey + Chien search + Forney).
///
/// This is the inner constant-rate error-correcting code (enc, dec) of the
/// Theorem 3.6 construction. An RS(n, k) code corrects any pattern of
/// e errors and s erasures with 2e + s <= n - k; the reduction needs a code
/// correcting an Omega(1) fraction of adversarial coordinate corruptions,
/// which rate-1/2 RS delivers (25% errors, 50% erasures).

#ifndef LDPHH_CODES_REED_SOLOMON_H_
#define LDPHH_CODES_REED_SOLOMON_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace ldphh {

/// \brief RS(n, k) codec over GF(2^8); n <= 255, 1 <= k < n.
class ReedSolomon {
 public:
  /// Creates an RS(n, k) codec. CHECK-fails on invalid parameters.
  ReedSolomon(int n, int k);

  /// Encodes \p message (k symbols) into a systematic codeword (n symbols:
  /// message followed by n-k parity symbols).
  std::vector<uint8_t> Encode(const std::vector<uint8_t>& message) const;

  /// \brief Decodes \p received (n symbols) into the k message symbols.
  ///
  /// \param received   the possibly corrupted codeword.
  /// \param erasures   positions known to be unreliable (each counts once
  ///                   against the 2e + s <= n - k budget).
  /// \returns the message, or DecodeFailure if the corruption exceeds the
  ///          code's capability (or the decoder's consistency check fails).
  StatusOr<std::vector<uint8_t>> Decode(const std::vector<uint8_t>& received,
                                        const std::vector<int>& erasures = {}) const;

  int n() const { return n_; }
  int k() const { return k_; }
  /// Maximum correctable errors with no erasures: floor((n-k)/2).
  int max_errors() const { return (n_ - k_) / 2; }

 private:
  int n_;
  int k_;
  std::vector<uint8_t> generator_;  ///< Generator polynomial, low-order first.
};

}  // namespace ldphh

#endif  // LDPHH_CODES_REED_SOLOMON_H_
