/// \file url_code.h
/// \brief The unique-list-recoverable code of Theorem 3.6 (Larsen-Nelson-
/// Nguyen-Thorup), built from an inner ECC, an expander, and the caller's
/// per-coordinate hash functions h_1..h_M.
///
/// Encoding of x in coordinate m (paper notation):
///   Enc(x)_m   = (h_m(x), E~nc(x)_m)
///   E~nc(x)_m  = (enc(x)_m, h_{Gamma(m)_1}(x), ..., h_{Gamma(m)_d}(x))
/// where enc is the inner error-correcting code (Reed-Solomon here, see
/// DESIGN.md substitution 1) split into M chunks, and Gamma(m)_s is the s-th
/// neighbor of m in the expander F.
///
/// Decoding receives a list per coordinate (with distinct hash values per
/// list — the "unique" in unique-list-recoverable), builds the layered graph
/// on [M] x [Y] whose edges are the mutually-confirmed neighbor suggestions,
/// extracts spectral clusters, peels low-degree vertices, reads off one
/// chunk per layer (erasure when a layer is missing), and ECC-decodes.
/// Every x whose encoding appears in at least (1 - alpha) M of the lists is
/// recovered.

#ifndef LDPHH_CODES_URL_CODE_H_
#define LDPHH_CODES_URL_CODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/codes/reed_solomon.h"
#include "src/common/bit_util.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/graphs/cluster.h"
#include "src/graphs/expander.h"
#include "src/hashing/kwise_hash.h"

namespace ldphh {

/// Parameters of the unique-list-recoverable code.
struct UrlCodeParams {
  int domain_bits = 64;      ///< log2 |X|, up to 256.
  int num_coords = 16;       ///< M, number of coordinates (even, >= 4).
  int hash_range = 256;      ///< Y, per-coordinate hash range (power of two).
  int expander_degree = 6;   ///< d, even.
  double alpha = 0.25;       ///< Tolerated fraction of bad coordinates.
  double lambda_fraction = 0.95;  ///< Expander certificate: lambda2 <= f * d.
  int verify_min_agree_percent = 60;  ///< Candidate acceptance threshold.
};

/// \brief Instantiated Enc/Dec pair of Theorem 3.6.
class UrlCode {
 public:
  /// The E~nc symbol at one coordinate.
  struct Symbol {
    std::vector<uint8_t> chunk;      ///< enc(x)_m: chunk_symbols bytes.
    std::vector<uint16_t> nbr_hash;  ///< d neighbor hash values, each < Y.
  };

  /// One entry of a decoder input list: a hash value and the packed payload
  /// bits of the symbol (as recovered bitwise by the frequency oracle).
  struct ListEntry {
    uint16_t y = 0;
    uint64_t payload = 0;
  };

  /// \brief Builds the code.
  ///
  /// \param params  see UrlCodeParams; CHECKed for consistency.
  /// \param seed    seeds the per-coordinate hashes h_m and the expander —
  ///                this is the code's share of the public randomness.
  static StatusOr<UrlCode> Create(const UrlCodeParams& params, uint64_t seed);

  /// Full encoding of \p x: hash value and symbol for every coordinate.
  struct Codeword {
    std::vector<uint16_t> y;       ///< h_m(x) for m in [M].
    std::vector<Symbol> symbols;   ///< E~nc(x)_m for m in [M].
  };
  Codeword Encode(const DomainItem& x) const;

  /// h_m(x) alone (cheap; used by verification).
  uint16_t CoordHash(const DomainItem& x, int m) const {
    return static_cast<uint16_t>(hashes_->at(m)(x));
  }

  /// Number of payload bits per coordinate (<= 64 by construction).
  int PayloadBits() const { return payload_bits_; }
  /// Packs a symbol into payload bits (chunk little-endian first, then
  /// neighbor hashes).
  uint64_t PackPayload(const Symbol& s) const;
  /// Inverse of PackPayload.
  Symbol UnpackPayload(uint64_t bits) const;

  /// \brief Dec: recovers all codewords consistent with >= (1 - alpha) M of
  /// the lists.
  ///
  /// \param lists  one list per coordinate; entries with duplicate y within
  ///   a list are dropped (keeping the first) to enforce uniqueness.
  /// \param rng    drives the spectral clustering.
  /// \returns recovered domain items (deduplicated, verified).
  std::vector<DomainItem> Decode(const std::vector<std::vector<ListEntry>>& lists,
                                 Rng& rng) const;

  const UrlCodeParams& params() const { return params_; }
  /// RS chunk symbols per coordinate.
  int chunk_symbols() const { return chunk_symbols_; }
  const Expander& expander() const { return *expander_; }

 private:
  UrlCode(const UrlCodeParams& params, int chunk_symbols, int message_bytes,
          ReedSolomon rs, Expander expander, HashFamily hashes);

  UrlCodeParams params_;
  int chunk_symbols_;
  int message_bytes_;
  int payload_bits_;
  int hash_bits_;
  std::shared_ptr<const ReedSolomon> rs_;
  std::shared_ptr<const Expander> expander_;
  std::shared_ptr<const HashFamily> hashes_;  ///< M pairwise functions X -> [Y].
};

}  // namespace ldphh

#endif  // LDPHH_CODES_URL_CODE_H_
