#include "src/codes/gf256.h"

namespace ldphh {

const GF256::Tables& GF256::tables() {
  static const Tables t = [] {
    Tables tab{};
    uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      tab.exp[i] = static_cast<uint8_t>(x);
      tab.log[x] = i;
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    tab.log[0] = 0;  // Unused sentinel; Mul/Inv guard zero explicitly.
    return tab;
  }();
  return t;
}

}  // namespace ldphh
