/// \file gf256.h
/// \brief GF(2^8) arithmetic (AES-adjacent polynomial x^8+x^4+x^3+x^2+1).
///
/// Backs the Reed-Solomon codec that serves as the constant-rate ECC in the
/// Theorem 3.6 unique-list-recoverable code (see DESIGN.md substitution 1).

#ifndef LDPHH_CODES_GF256_H_
#define LDPHH_CODES_GF256_H_

#include <array>
#include <cstdint>

namespace ldphh {

/// Arithmetic over GF(2^8) via log/antilog tables (generator 0x02,
/// reduction polynomial 0x11d).
class GF256 {
 public:
  /// Field addition (= subtraction = XOR).
  static uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }

  /// Field multiplication.
  static uint8_t Mul(uint8_t a, uint8_t b) {
    if (a == 0 || b == 0) return 0;
    return Exp(Log(a) + Log(b));
  }

  /// Multiplicative inverse; a must be nonzero.
  static uint8_t Inv(uint8_t a) { return Exp(255 - Log(a)); }

  /// a / b with b nonzero.
  static uint8_t Div(uint8_t a, uint8_t b) {
    if (a == 0) return 0;
    return Exp(Log(a) + 255 - Log(b));
  }

  /// a^e for e >= 0.
  static uint8_t Pow(uint8_t a, int e) {
    if (a == 0) return e == 0 ? 1 : 0;
    const int l = (Log(a) * (e % 255)) % 255;
    return Exp((l + 255) % 255);
  }

  /// The generator element alpha = 0x02 raised to the i-th power.
  static uint8_t AlphaPow(int i) { return Exp(((i % 255) + 255) % 255); }

  /// Discrete log base alpha; a must be nonzero.
  static int Log(uint8_t a) { return tables().log[a]; }

  /// alpha^i with i reduced mod 255 (accepts i in [0, 510)).
  static uint8_t Exp(int i) { return tables().exp[i % 255]; }

 private:
  struct Tables {
    std::array<uint8_t, 255> exp;
    std::array<int, 256> log;
  };
  static const Tables& tables();
};

}  // namespace ldphh

#endif  // LDPHH_CODES_GF256_H_
